"""Property tests for the shard wire format: round-trip identity.

Scatter-gather answers can only be bit-identical to a single-tree run
if every report crossing the pipe reconstructs the exact IEEE-754
doubles it was encoded from — including negative zero, subnormal
("denormal") magnitudes and infinite expirations.  Equality via ``==``
would paper over ``-0.0 == 0.0``, so these tests compare raw bit
patterns.
"""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.shard.wire import MAGIC, OpCodec
from repro.workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp

DIMS = 2

finite = st.floats(allow_nan=False, allow_infinity=False)
oids = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def f64_bits(value):
    return struct.pack("<d", value)


def same_bits(a, b):
    return f64_bits(a) == f64_bits(b)


@st.composite
def points(draw):
    pos = tuple(draw(finite) for _ in range(DIMS))
    vel = tuple(draw(finite) for _ in range(DIMS))
    t_ref = draw(finite)
    # Expirations stress subnormal offsets and the infinite sentinel.
    delta = draw(
        st.one_of(
            st.just(math.inf),
            st.floats(min_value=0.0, allow_nan=False, allow_infinity=False),
        )
    )
    t_exp = t_ref + delta
    return MovingPoint(pos, vel, t_ref, t_exp)


@st.composite
def rects(draw):
    lows, highs = [], []
    for _ in range(DIMS):
        a, b = draw(finite), draw(finite)
        lows.append(min(a, b))
        highs.append(max(a, b))
    return Rect(tuple(lows), tuple(highs))


@st.composite
def queries(draw):
    t1 = draw(finite)
    t2 = t1 + draw(
        st.floats(min_value=0.0, allow_nan=False, allow_infinity=False)
    )
    kind = draw(st.sampled_from(["timeslice", "window", "moving"]))
    if kind == "timeslice":
        return TimesliceQuery(draw(rects()), t1)
    if kind == "window":
        return WindowQuery(draw(rects()), t1, t2)
    return MovingQuery(draw(rects()), draw(rects()), t1, t2)


@st.composite
def operations(draw):
    time = draw(finite)
    kind = draw(st.sampled_from(["insert", "delete", "update", "query"]))
    if kind == "insert":
        return InsertOp(time, draw(oids), draw(points()))
    if kind == "delete":
        return DeleteOp(time, draw(oids), draw(points()))
    if kind == "update":
        return UpdateOp(time, draw(oids), draw(points()), draw(points()))
    return QueryOp(time, draw(queries()))


def assert_point_identical(a, b):
    assert a.dims == b.dims
    for x, y in zip((*a.pos, *a.vel, a.t_ref, a.t_exp),
                    (*b.pos, *b.vel, b.t_ref, b.t_exp)):
        assert same_bits(x, y)


def assert_rect_identical(a, b):
    for x, y in zip((*a.lo, *a.hi), (*b.lo, *b.hi)):
        assert same_bits(x, y)


def assert_op_identical(a, b):
    assert type(a) is type(b)
    assert same_bits(a.time, b.time)
    if isinstance(a, (InsertOp, DeleteOp)):
        assert a.oid == b.oid
        assert_point_identical(a.point, b.point)
    elif isinstance(a, UpdateOp):
        assert a.oid == b.oid
        assert_point_identical(a.old_point, b.old_point)
        assert_point_identical(a.new_point, b.new_point)
    else:
        qa, qb = a.query, b.query
        assert type(qa) is type(qb)
        if isinstance(qa, TimesliceQuery):
            assert_rect_identical(qa.rect, qb.rect)
            assert same_bits(qa.t, qb.t)
        elif isinstance(qa, WindowQuery):
            assert_rect_identical(qa.rect, qb.rect)
            assert same_bits(qa.t1, qb.t1)
            assert same_bits(qa.t2, qb.t2)
        else:
            assert_rect_identical(qa.rect1, qb.rect1)
            assert_rect_identical(qa.rect2, qb.rect2)
            assert same_bits(qa.t1, qb.t1)
            assert same_bits(qa.t2, qb.t2)


@given(ops=st.lists(operations(), max_size=12))
def test_op_batch_round_trips_bit_identically(ops):
    codec = OpCodec(DIMS)
    decoded = codec.decode_ops(codec.encode_ops(ops))
    assert len(decoded) == len(ops)
    for original, back in zip(ops, decoded):
        assert_op_identical(original, back)


@given(
    answers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.lists(oids, max_size=20),
        ),
        max_size=8,
    )
)
def test_answer_block_round_trips_exactly(answers):
    codec = OpCodec(DIMS)
    decoded = codec.decode_answers(
        codec.encode_answers([(i, list(o)) for i, o in answers])
    )
    assert decoded == [(i, list(o)) for i, o in answers]


@given(entries=st.lists(st.tuples(points(), oids), max_size=15))
def test_leaf_entries_round_trip_bit_identically(entries):
    codec = OpCodec(DIMS)
    decoded = codec.decode_entries(codec.encode_entries(entries))
    assert len(decoded) == len(entries)
    for (point, oid), (back, back_oid) in zip(entries, decoded):
        assert oid == back_oid
        assert_point_identical(point, back)


def test_codec_rejects_foreign_and_mismatched_batches():
    codec = OpCodec(DIMS)
    batch = codec.encode_ops([InsertOp(0.0, 1, MovingPoint((1.0, 2.0), (0.0, 0.0)))])
    with pytest.raises(ValueError, match="magic"):
        codec.decode_ops(b"\x00" * len(batch))
    with pytest.raises(ValueError, match="version"):
        codec.decode_ops(batch[:4] + b"\x7f" + batch[5:])
    with pytest.raises(ValueError, match="dims"):
        OpCodec(3).decode_ops(batch)
    with pytest.raises(ValueError, match="dims"):
        OpCodec(3).encode_ops([InsertOp(0.0, 1, MovingPoint((1.0, 2.0), (0.0, 0.0)))])
    assert batch[:4] == struct.pack("<I", MAGIC)


def test_codec_rejects_nonpositive_dimensionality():
    with pytest.raises(ValueError):
        OpCodec(0)
