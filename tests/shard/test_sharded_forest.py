"""End-to-end tests for the process-parallel sharded index.

Every test that spawns workers keeps the shard count at two and the
workload small: worker startup is a full interpreter ``spawn``, so the
suite buys its coverage with as few forests as possible.
"""

import math
import os
import random

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.serve import FrontendConfig, ServiceFrontend
from repro.shard import (
    ShardConfig,
    ShardCrashError,
    ShardedForest,
    ShardWorkerError,
)
from repro.storage.faults import TransientIOError
from repro.workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp
from repro.workloads.expiration import FixedPeriod
from repro.workloads.network import NetworkParams, generate_network_workload

TREE = TreeConfig(page_size=512, buffer_pages=16, default_ui=10.0)
SPACE = 100.0


def shard_config(**overrides):
    base = dict(
        workers=2, tree=TREE, partitioner="grid",
        space=SPACE, reach=90.0, join_timeout=10.0,
    )
    base.update(overrides)
    return ShardConfig(**base)


def random_report(rng, t, max_life=30.0):
    speed = rng.uniform(0.0, 3.0)
    angle = rng.uniform(0.0, 2.0 * math.pi)
    return MovingPoint(
        (rng.uniform(0.0, SPACE), rng.uniform(0.0, SPACE)),
        (speed * math.cos(angle), speed * math.sin(angle)),
        t,
        t + rng.uniform(5.0, max_life),
    )


def sample_queries(t):
    rect1 = Rect((10.0, 10.0), (60.0, 60.0))
    rect2 = Rect((30.0, 30.0), (80.0, 80.0))
    return (
        TimesliceQuery(rect1, t + 1.0),
        WindowQuery(rect1, t, t + 8.0),
        MovingQuery(rect1, rect2, t, t + 8.0),
    )


def small_workload(seed=0, insertions=150):
    params = NetworkParams(
        target_population=40,
        insertions=insertions,
        update_interval=10.0,
        space=SPACE,
        queries_per_insertions=10,
        seed=seed,
    )
    return generate_network_workload(params, FixedPeriod(20.0))


def oracle_replay(ops, config=TREE):
    """Single-tree fault-free replay: (answers by op index, failures)."""
    clock = SimulationClock()
    tree = MovingObjectTree(config, clock)
    answers, failed = {}, 0
    for i, op in enumerate(ops):
        clock.advance_to(op.time)
        if isinstance(op, InsertOp):
            tree.insert(op.oid, op.point)
        elif isinstance(op, UpdateOp):
            if not tree.update(op.oid, op.old_point, op.new_point):
                failed += 1
        elif isinstance(op, DeleteOp):
            if not tree.delete(op.oid, op.point):
                failed += 1
        elif isinstance(op, QueryOp):
            answers[i] = op.query
            answers[i] = tree.query(op.query)
    return answers, failed


# -- scatter-gather equals a single tree --------------------------------------


def test_interactive_ops_match_single_tree_oracle(tmp_path):
    rng = random.Random(11)
    oracle = MovingObjectTree(TREE, SimulationClock())
    with ShardedForest.create(str(tmp_path / "s"), shard_config()) as forest:
        live = {}
        for oid in range(60):
            point = random_report(rng, forest.clock.time)
            forest.insert(oid, point)
            oracle.insert(oid, point)
            live[oid] = point
        for oid in list(live)[:12]:
            new = random_report(rng, forest.clock.time)
            assert forest.update(oid, live[oid], new) == oracle.update(
                oid, live[oid], new
            )
            live[oid] = new
        for oid in list(live)[:8]:
            point = live.pop(oid)
            assert forest.delete(oid, point) == oracle.delete(oid, point)
        assert not forest.delete(10_000, random_report(rng, 0.0))
        for query in sample_queries(forest.clock.time):
            assert sorted(forest.query(query)) == sorted(oracle.query(query))
        assert forest.leaf_entry_count == oracle.leaf_entry_count
        assert forest.audit().leaf_entries == oracle.audit().leaf_entries


def test_batched_replay_matches_oracle_and_reports_spans(tmp_path):
    workload = small_workload(seed=3)
    expected, expected_failed = oracle_replay(workload.ops)
    with ShardedForest.create(
        str(tmp_path / "s"), shard_config(batch_ops=32)
    ) as forest:
        result = forest.apply_ops(workload.ops)
    assert result.ops == len(workload.ops)
    assert result.failed_deletes == expected_failed
    assert set(result.answers) == set(expected)
    for index, answer in expected.items():
        assert sorted(result.answers[index]) == sorted(answer)
    assert result.batches >= 2
    assert len(result.shard_busy_seconds) == 2
    assert result.wall_seconds >= result.blocked_seconds >= 0.0
    assert result.model_makespan_seconds > 0.0
    assert max(result.shard_busy_seconds) <= sum(result.shard_busy_seconds)
    # Grid pruning: at least one query must scatter below full fan-out.
    queries = len(expected)
    assert queries <= result.scattered_queries <= 2 * queries


def test_snapshot_gathers_all_shards(tmp_path):
    rng = random.Random(5)
    with ShardedForest.create(str(tmp_path / "s"), shard_config()) as forest:
        points = {
            oid: random_report(rng, 0.0) for oid in range(40)
        }
        for oid, point in points.items():
            forest.insert(oid, point)
        snapshot = forest.snapshot()
        assert snapshot.leaf_entry_count == 40
        assert {oid for _, oid in snapshot.leaf_entries()} == set(points)
        answer = snapshot.query(TimesliceQuery(Rect((0.0, 0.0), (SPACE, SPACE)), 1.0))
        assert sorted(answer) == sorted(points)


# -- durability ---------------------------------------------------------------


def test_close_checkpoints_and_reopen_preserves_answers(tmp_path):
    rng = random.Random(7)
    directory = str(tmp_path / "s")
    oracle = MovingObjectTree(TREE, SimulationClock())
    with ShardedForest.create(directory, shard_config()) as forest:
        for oid in range(50):
            point = random_report(rng, forest.clock.time)
            forest.insert(oid, point)
            oracle.insert(oid, point)
        last_time = forest.clock.time
    reopened = ShardedForest.open(directory)
    try:
        reopened.clock.advance_to(last_time)
        for query in sample_queries(last_time):
            assert sorted(reopened.query(query)) == sorted(oracle.query(query))
        assert reopened.leaf_entry_count == oracle.leaf_entry_count
    finally:
        reopened.close()


def test_open_rejects_missing_or_mismatched_manifest(tmp_path):
    with pytest.raises(FileNotFoundError):
        ShardedForest.open(str(tmp_path / "nowhere"))
    directory = str(tmp_path / "s")
    ShardedForest.create(directory, shard_config()).close()
    with pytest.raises(ValueError, match="workers"):
        ShardedForest.open(directory, shard_config(workers=3))


# -- worker lifecycle ---------------------------------------------------------


def test_worker_crash_surfaces_as_retryable_then_revives(tmp_path):
    rng = random.Random(13)
    oracle = MovingObjectTree(TREE, SimulationClock())
    with ShardedForest.create(str(tmp_path / "s"), shard_config()) as forest:
        live = {}
        for oid in range(30):
            point = random_report(rng, forest.clock.time)
            forest.insert(oid, point)
            oracle.insert(oid, point)
            live[oid] = point
        forest.checkpoint()
        victim = forest.partitioner.partition_of(live[0])
        forest.crash_worker(victim)
        # The next operation touching the dead shard fails fast with a
        # *retryable* storage fault rather than hanging the router.
        with pytest.raises(ShardCrashError) as caught:
            forest.query(TimesliceQuery(Rect((0.0, 0.0), (SPACE, SPACE)), 1.0))
        assert isinstance(caught.value, TransientIOError)
        # The retry revives the shard through WAL recovery; committed
        # state survives and answers again equal the oracle.
        for query in sample_queries(forest.clock.time):
            assert sorted(forest.query(query)) == sorted(oracle.query(query))
        point = random_report(rng, forest.clock.time)
        forest.insert(999, point)
        oracle.insert(999, point)
        assert forest.leaf_entry_count == oracle.leaf_entry_count


def test_close_is_bounded_and_idempotent_after_crash(tmp_path):
    forest = ShardedForest.create(
        str(tmp_path / "s"), shard_config(join_timeout=2.0)
    )
    forest.insert(1, MovingPoint((5.0, 5.0), (0.1, 0.0), 0.0, 50.0))
    forest.crash_worker(forest.partitioner.partition_of(
        MovingPoint((5.0, 5.0), (0.1, 0.0), 0.0, 50.0)
    ))
    forest.close()  # must not hang on the dead worker
    forest.close()  # idempotent
    with pytest.raises(Exception, match="closed"):
        forest.insert(2, MovingPoint((5.0, 5.0), (0.1, 0.0), 0.0, 50.0))


def test_worker_errors_report_the_traceback(tmp_path):
    with ShardedForest.create(str(tmp_path / "s"), shard_config()) as forest:
        point = MovingPoint((5.0, 5.0), (0.1, 0.0), 0.0, 50.0)
        forest.insert(1, point)
        # Bulk-loading a non-empty shard is a worker-side ValueError;
        # it must come back as a reported fault with the traceback.
        with pytest.raises(ShardWorkerError, match="Traceback"):
            forest.bulk_load([(point, 2)])
        # The worker survives a reported error and keeps serving.
        assert forest.leaf_entry_count == 1


# -- configuration ------------------------------------------------------------


def test_buffer_budget_splits_across_workers():
    config = shard_config(workers=2, tree=TREE.with_(buffer_pages=9))
    shares = [config.member_tree_config(i).buffer_pages for i in range(2)]
    assert shares == [5, 4]
    whole = config.with_(split_buffer=False)
    assert whole.member_tree_config(0).buffer_pages == 9


def test_config_rejects_degenerate_values():
    with pytest.raises(ValueError):
        ShardConfig(workers=0)
    with pytest.raises(ValueError):
        ShardConfig(batch_ops=0)
    with pytest.raises(ValueError):
        ShardConfig(window=0)


# -- serving frontend over shards ---------------------------------------------


def test_frontend_serves_sharded_index(tmp_path):
    workload = small_workload(seed=9, insertions=120)
    expected, _ = oracle_replay(workload.ops)
    forest = ShardedForest.create(str(tmp_path / "s"), shard_config())
    try:
        frontend = ServiceFrontend(
            forest,
            FrontendConfig(queue_capacity=10_000, checkpoint_interval=60),
        )
        report = frontend.run(workload.ops)
        assert report.served_queries == len(expected)
        assert report.failed_queries == 0
        by_index = {o.index: o for o in report.outcomes}
        for index, answer in expected.items():
            assert by_index[index].answer == tuple(sorted(answer))
        assert report.checkpoints >= 1
    finally:
        forest.close()


# -- cross-query batching ------------------------------------------------------


def test_query_batch_matches_sequential_queries(tmp_path):
    """One wire batch per shard answers exactly like one-at-a-time."""
    rng = random.Random(17)
    # A small window and batch size force mid-send pipelining.
    config = shard_config(batch_ops=5, window=2)
    with ShardedForest.create(str(tmp_path / "s"), config) as forest:
        for oid in range(80):
            forest.insert(oid, random_report(rng, forest.clock.time))
        t = forest.clock.time
        queries = list(sample_queries(t))
        for _ in range(27):
            x = rng.uniform(0.0, SPACE - 20.0)
            y = rng.uniform(0.0, SPACE - 20.0)
            rect = Rect((x, y), (x + 20.0, y + 20.0))
            queries.append(WindowQuery(rect, t, t + rng.uniform(0.0, 8.0)))
        sequential = [forest.query(query) for query in queries]
        assert forest.query_batch(queries) == sequential
        assert forest.query_batch([]) == []
        assert forest.query_batch(queries[:1]) == sequential[:1]


def test_frontend_batched_serving_matches_oracle(tmp_path):
    """batch_queries > 1 drains query runs without changing answers."""
    workload = small_workload(seed=9, insertions=120)
    expected, _ = oracle_replay(workload.ops)
    forest = ShardedForest.create(str(tmp_path / "s"), shard_config())
    try:
        frontend = ServiceFrontend(
            forest,
            FrontendConfig(queue_capacity=10_000, checkpoint_interval=60,
                           batch_queries=8),
        )
        report = frontend.run(workload.ops)
        assert report.served_queries == len(expected)
        assert report.failed_queries == 0
        by_index = {o.index: o for o in report.outcomes}
        for index, answer in expected.items():
            assert by_index[index].answer == tuple(sorted(answer))
    finally:
        forest.close()
