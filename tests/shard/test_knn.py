"""Sharded kNN: wire round-trips and scatter-gather oracle identity.

Distances cross the worker pipe as raw IEEE-754 doubles, so the merged
cross-shard result can (and must) be bit-identical to a single-tree
run and to :func:`~repro.geometry.knn.brute_force_knn`.  The codec
tests compare bit patterns; the end-to-end tests compare full result
lists including exact distance ties.
"""

import math
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TreeConfig
from repro.geometry.kinematics import MovingPoint
from repro.geometry.knn import brute_force_knn
from repro.shard import ShardConfig, ShardedForest
from repro.shard.wire import FLAG_KNN, OpCodec
from repro.workloads.base import InsertOp, KnnOp

TREE = TreeConfig(page_size=512, buffer_pages=16, default_ui=10.0)
SPACE = 100.0
DIMS = 2

finite = st.floats(allow_nan=False, allow_infinity=False)


def f64_bits(*values):
    return struct.pack(f"<{len(values)}d", *values)


# -- codec -------------------------------------------------------------------


@given(
    finite,
    st.tuples(finite, finite),
    finite,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.one_of(st.just(math.inf), finite),
)
def test_knn_op_roundtrips_bit_exact(time, x, t, k, bound):
    codec = OpCodec(DIMS)
    payload = codec.encode_ops([KnnOp(time, x, t, k, bound)])
    (back,), trace = codec.decode_ops_traced(payload)
    assert isinstance(back, KnnOp)
    assert not trace
    assert back.k == k
    assert f64_bits(back.time, *back.x, back.t, back.bound_sq) == f64_bits(
        time, *x, t, bound
    )


def test_knn_batches_set_the_knn_flag():
    codec = OpCodec(DIMS)
    point = MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, math.inf)
    plain = codec.encode_ops([InsertOp(0.0, 1, point)])
    mixed = codec.encode_ops(
        [InsertOp(0.0, 1, point), KnnOp(0.0, (0.0, 0.0), 1.0, 3)]
    )
    header = struct.Struct("<IBBHI")
    assert header.unpack_from(plain)[3] & FLAG_KNN == 0
    assert header.unpack_from(mixed)[3] & FLAG_KNN == FLAG_KNN


def test_knn_op_rejects_dimension_mismatch():
    codec = OpCodec(DIMS)
    with pytest.raises(ValueError):
        codec.encode_ops([KnnOp(0.0, (1.0, 2.0, 3.0), 1.0, 2)])


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.lists(st.integers(-100, 100), max_size=5),
        ),
        max_size=4,
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.lists(
                st.tuples(finite, st.integers(-(2**63), 2**63 - 1)),
                max_size=6,
            ),
        ),
        max_size=4,
    ),
)
def test_answer_frame_roundtrips_bit_exact(answers, scored):
    codec = OpCodec(DIMS)
    frame = codec.encode_answer_frame(answers, scored)
    back_answers, back_scored = codec.decode_answer_frame(frame)
    assert back_answers == answers
    assert len(back_scored) == len(scored)
    for (index, pairs), (bindex, bpairs) in zip(scored, back_scored):
        assert bindex == index
        assert [oid for _, oid in bpairs] == [oid for _, oid in pairs]
        for (dist, _), (bdist, _) in zip(pairs, bpairs):
            assert f64_bits(bdist) == f64_bits(dist)


def test_plain_answers_stay_decodable_by_the_frame_decoder_prefix():
    # The frame starts with a byte-identical encode_answers block, so a
    # range-only reply and the frame prefix agree.
    codec = OpCodec(DIMS)
    answers = [(0, [1, 2, 3]), (2, []), (5, [9])]
    plain = codec.encode_answers(answers)
    framed = codec.encode_answer_frame(answers, [])
    assert framed.startswith(plain)
    assert codec.decode_answers(plain) == answers
    assert codec.decode_answer_frame(framed) == (answers, [])


# -- end-to-end --------------------------------------------------------------


def shard_config(**overrides):
    base = dict(
        workers=2, tree=TREE, partitioner="grid",
        space=SPACE, reach=90.0, join_timeout=10.0,
    )
    base.update(overrides)
    return ShardConfig(**base)


def random_entries(rng, n, t=0.0, life=30.0):
    entries = []
    for oid in range(n):
        t_exp = math.inf if rng.random() < 0.2 else t + rng.uniform(0, life)
        entries.append((
            MovingPoint(
                (rng.uniform(0, SPACE), rng.uniform(0, SPACE)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                t,
                t_exp,
            ),
            oid,
        ))
    return entries


def test_sharded_knn_matches_brute_force_and_tracks_metrics(tmp_path):
    rng = random.Random(11)
    entries = random_entries(rng, 250)
    with ShardedForest.create(str(tmp_path / "s"), shard_config()) as forest:
        forest.bulk_load(entries)
        for t in (0.0, 9.0, 27.0):
            for k in (0, 1, 6, 40, 500):
                x = (rng.uniform(0, SPACE), rng.uniform(0, SPACE))
                expected = brute_force_knn(entries, x, t, k)
                assert forest.knn_entries(x, t, k) == expected
                assert forest.query_knn(x, t, k) == [
                    oid for _, oid in expected
                ]


def test_sharded_knn_exact_cross_shard_ties(tmp_path):
    # Grid partitioning puts the left and right points on different
    # workers; the merge must still interleave equal distances by oid.
    entries = [
        (MovingPoint((30.0, 50.0), (0.0, 0.0), 0.0, math.inf), 4),
        (MovingPoint((70.0, 50.0), (0.0, 0.0), 0.0, math.inf), 1),
        (MovingPoint((30.0, 50.0), (0.0, 0.0), 0.0, math.inf), 2),
        (MovingPoint((70.0, 50.0), (0.0, 0.0), 0.0, math.inf), 3),
    ]
    with ShardedForest.create(str(tmp_path / "s"), shard_config()) as forest:
        forest.bulk_load(entries)
        assert forest.knn_entries((50.0, 50.0), 1.0, 4) == [
            (400.0, 1), (400.0, 2), (400.0, 3), (400.0, 4)
        ]
        assert forest.query_knn((50.0, 50.0), 1.0, 3) == [1, 2, 3]


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.floats(min_value=0.0, max_value=35.0, allow_nan=False),
    st.integers(min_value=0, max_value=40),
)
def test_sharded_knn_property_equals_oracle(tmp_path_factory, seed, t, k):
    rng = random.Random(seed)
    entries = random_entries(rng, 80)
    x = (rng.uniform(-10, SPACE + 10), rng.uniform(-10, SPACE + 10))
    directory = str(tmp_path_factory.mktemp("knn") / "s")
    with ShardedForest.create(directory, shard_config()) as forest:
        forest.bulk_load(entries)
        assert forest.knn_entries(x, t, k) == brute_force_knn(
            entries, x, t, k
        )
