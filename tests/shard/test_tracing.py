"""Cross-process tracing: one scatter-gather, one reassembled span tree.

Spawning workers is expensive, so the whole distributed-tracing
acceptance surface — trace propagation over the wire, router-side span
adoption, piggybacked stats flushes, live registry merging and the
latency breakdown arithmetic — is exercised against a single two-worker
forest.
"""

import random

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import latency_breakdown, shard_shares
from repro.shard import ShardedForest

from .test_sharded_forest import random_report, sample_queries, shard_config


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced 2-worker session: inserts, a query_batch, a query."""
    registry, tracer = MetricsRegistry(), Tracer()
    rng = random.Random(5)
    base = tmp_path_factory.mktemp("traced") / "forest"
    with ShardedForest.create(
        str(base), shard_config(flush_every=1),
        registry=registry, tracer=tracer,
    ) as forest:
        for oid in range(48):
            forest.insert(oid, random_report(rng, forest.clock.time))
        batch_answers = forest.query_batch(list(sample_queries(0.0)))
        single_answer = forest.query(sample_queries(0.0)[0])
        live = forest.live_registry()
        summaries = forest.worker_summaries()
    return {
        "records": tracer.records(),
        "tracer": tracer,
        "registry": registry,
        "live": live,
        "summaries": summaries,
        "batch_answers": batch_answers,
        "single_answer": single_answer,
    }


def test_query_batch_yields_one_reassembled_span_tree(traced_run):
    records = traced_run["records"]
    roots = [r for r in records
             if r.get("kind") == "span" and r["name"] == "shards.query_batch"]
    assert len(roots) == 1, "one fan-out, one root span"
    (root,) = roots
    trace_id = root["attrs"]["trace_id"]

    workers = [
        r for r in records
        if r.get("kind") == "span" and r["name"] == "worker.batch"
        and r["attrs"].get("trace_id") == trace_id
    ]
    assert workers, "worker spans must ship back and adopt"
    for span in workers:
        # Re-parented directly under the originating fan-out span, one
        # level deeper, stamped with its shard at adoption.
        assert span["parent_id"] == root["span_id"]
        assert span["depth"] == root["depth"] + 1
        assert span["attrs"]["shard"] in (0, 1)
        # process_time and the monotonic span clock have different
        # granularities, so CPU can nominally exceed wall by a tick
        # (latency_breakdown clamps the same way).
        assert 0.0 <= span["attrs"]["cpu_s"] <= span["dur"] + 1e-4
        assert span["dur"] <= root["dur"] + 1e-9
    # Both shards were reached by the sample queries.
    assert {s["attrs"]["shard"] for s in workers} == {0, 1}


def test_single_query_trace_is_distinct(traced_run):
    records = traced_run["records"]
    (root,) = [r for r in records
               if r.get("kind") == "span" and r["name"] == "shards.query"]
    batch_root = next(r for r in records
                      if r.get("name") == "shards.query_batch")
    assert root["attrs"]["trace_id"] != batch_root["attrs"]["trace_id"]
    mine = [r for r in records
            if r.get("name") == "worker.batch"
            and r["attrs"].get("trace_id") == root["attrs"]["trace_id"]]
    assert all(s["parent_id"] == root["span_id"] for s in mine)


def test_stage_durations_sum_to_request_latency(traced_run):
    records = traced_run["records"]
    breakdown = latency_breakdown(records, queue_s=0.0)
    stages = (breakdown["router_s"] + breakdown["wire_s"]
              + breakdown["worker_cpu_s"] + breakdown["worker_io_s"])
    # Additivity is exact up to clamping slack (worker wall projected
    # onto the blocked-wait window); allow 5% of total as tolerance.
    assert stages == pytest.approx(breakdown["total_s"],
                                   rel=0.05, abs=1e-4)
    roots_total = sum(
        r["dur"] for r in records
        if r.get("kind") == "span"
        and r["name"] in ("shards.query", "shards.query_batch")
    )
    assert breakdown["total_s"] == pytest.approx(roots_total)


def test_shard_shares_cover_both_workers(traced_run):
    shares = shard_shares(traced_run["records"])
    assert set(shares) == {0, 1}
    assert sum(shares.values()) == pytest.approx(1.0)


def test_live_registry_merges_piggybacked_worker_metrics(traced_run):
    live = traced_run["live"]
    # Worker-side tree metrics arrive via flush piggybacks, router-side
    # counters directly; both appear merged in one registry.
    assert live.value("tree.inserts") > 0
    assert live.value("buffer.hits") > 0
    assert live.value("shards.batches") > 0
    assert live.value("shards.workers") == 2
    # Merging is per-call and idempotent: the cached exports are
    # cumulative, so a second read reports identical totals.
    assert traced_run["registry"].value("shards.batches") == \
        live.value("shards.batches")


def test_worker_summaries_expose_per_shard_sizes(traced_run):
    summaries = traced_run["summaries"]
    assert set(summaries) == {0, 1}
    for summary in summaries.values():
        assert summary["entries"] >= 0
        assert summary["pages"] >= 1
        assert "metrics" not in summary
        assert summary["io"]["reads"] >= 0


def test_answers_unaffected_by_tracing(traced_run, tmp_path):
    rng = random.Random(5)
    with ShardedForest.create(
        str(tmp_path / "plain"), shard_config()
    ) as forest:
        for oid in range(48):
            forest.insert(oid, random_report(rng, forest.clock.time))
        assert forest.query_batch(list(sample_queries(0.0))) == \
            traced_run["batch_answers"]
        assert forest.query(sample_queries(0.0)[0]) == \
            traced_run["single_answer"]
