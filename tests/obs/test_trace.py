"""Unit tests for the tracer: spans, events, ring buffer, JSONL."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    read_jsonl,
    sum_event_attr,
    traced,
)


class FakeClock:
    """Deterministic monotonic clock: each call advances by one step."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def test_span_records_duration_and_attrs():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("op", kind="test") as span:
        span.set(result=3)
    (record,) = tracer.spans()
    assert record["name"] == "op"
    assert record["dur"] == pytest.approx(1.0)
    assert record["attrs"] == {"kind": "test", "result": 3}
    assert record["parent_id"] is None
    assert record["depth"] == 0


def test_span_nesting_parent_ids_and_depth():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            tracer.event("tick")
        with tracer.span("inner"):
            pass
    records = tracer.records()
    # The event lands while inner1 is open; spans append at exit, so
    # children precede their parent.
    event, inner1, inner2, outer = records
    assert outer["name"] == "outer" and outer["parent_id"] is None
    for inner in (inner1, inner2):
        assert inner["parent_id"] == outer["span_id"]
        assert inner["depth"] == 1
    assert event["kind"] == "event"
    assert event["span_id"] == inner1["span_id"]


def test_span_records_exception_and_unwinds_stack():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    (record,) = tracer.spans()
    assert record["error"] == "RuntimeError"
    with tracer.span("after"):
        pass
    assert tracer.spans("after")[0]["parent_id"] is None


def test_event_without_open_span():
    tracer = Tracer()
    tracer.event("purge", entries=4)
    (record,) = tracer.events()
    assert record["span_id"] is None
    assert record["attrs"] == {"entries": 4}


def test_ring_buffer_drops_oldest_and_counts():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.event("e", i=i)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r["attrs"]["i"] for r in tracer.events()] == [2, 3, 4]
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_event_totals_and_slowest_spans():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    tracer.event("a")
    tracer.event("a")
    tracer.event("b")
    with tracer.span("fast"):
        pass  # dur 1 step
    clock.step = 5.0
    with tracer.span("slow"):
        pass  # dur 5 steps
    assert tracer.event_totals() == {"a": 2, "b": 1}
    slowest = tracer.slowest_spans(1)
    assert [r["name"] for r in slowest] == ["slow"]
    assert tracer.slowest_spans(5, name="fast")[0]["name"] == "fast"


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("op"):
        tracer.event("purge", entries=2)
        tracer.event("purge", entries=3)
    path = tmp_path / "trace.jsonl"
    assert tracer.export_jsonl(str(path)) == 3
    records = read_jsonl(str(path))
    assert records == tracer.records()
    assert sum_event_attr(records, "purge", "entries") == 5
    # Append mode with an extra key merged into each record.
    tracer2 = Tracer()
    tracer2.event("purge", entries=7)
    tracer2.export_jsonl(str(path), append=True, extra={"adapter": "x"})
    records = read_jsonl(str(path))
    assert len(records) == 4
    assert records[-1]["adapter"] == "x"
    assert sum_event_attr(records, "purge", "entries") == 12


def test_clear_resets_everything():
    tracer = Tracer(capacity=1)
    tracer.event("a")
    tracer.event("b")
    assert tracer.dropped == 1
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0


def test_traced_decorator_honours_attribute():
    class Indexed:
        def __init__(self, tracer):
            self._tracer = tracer

        @traced("indexed.work")
        def work(self, n):
            return n * 2

    tracer = Tracer()
    assert Indexed(tracer).work(4) == 8
    assert tracer.spans("indexed.work")
    assert Indexed(None).work(4) == 8  # disabled path still runs


def test_null_tracer_is_inert(tmp_path):
    assert not NULL_TRACER
    with NULL_TRACER.span("x") as span:
        span.set(a=1)
        NULL_TRACER.event("y")
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.records() == []
    assert NULL_TRACER.event_totals() == {}
    assert NULL_TRACER.slowest_spans() == []
    path = tmp_path / "empty.jsonl"
    assert NULL_TRACER.export_jsonl(str(path)) == 0
    assert read_jsonl(str(path)) == []


# -- export brackets and file meta ---------------------------------------------


def test_export_brackets_surface_drops_and_open_spans(tmp_path):
    from repro.obs.trace import TraceFileMeta

    tracer = Tracer(capacity=2, clock=FakeClock())
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    outer = tracer.span("still-open")
    outer.__enter__()
    path = tmp_path / "t.jsonl"
    n = tracer.export_jsonl(str(path))
    assert n == 2  # data records only; brackets don't count

    records, meta = read_jsonl(str(path), meta=True)
    assert len(records) == 2
    assert isinstance(meta, TraceFileMeta)
    assert meta.segments == 1
    assert meta.dropped == 3
    assert meta.open_spans == 1
    assert meta.records == 2
    assert not meta.truncated
    assert not meta.complete  # drops happened: the file is partial
    outer.__exit__(None, None, None)


def test_appended_exports_accumulate_segments(tmp_path):
    tracer = Tracer(clock=FakeClock())
    path = tmp_path / "t.jsonl"
    with tracer.span("a"):
        pass
    tracer.export_jsonl(str(path))
    tracer.clear()
    with tracer.span("b"):
        pass
    tracer.export_jsonl(str(path), append=True)

    records, meta = read_jsonl(str(path), meta=True)
    assert [r["name"] for r in records] == ["a", "b"]
    assert meta.segments == 2
    assert meta.complete


def test_truncated_export_is_flagged(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        pass
    path = tmp_path / "t.jsonl"
    tracer.export_jsonl(str(path))
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")  # chop the footer
    _, meta = read_jsonl(str(path), meta=True)
    assert meta.truncated
    assert not meta.complete


# -- cross-tracer span adoption ------------------------------------------------


def test_adopt_reparents_foreign_spans_under_parent():
    worker = Tracer(clock=FakeClock())
    with worker.span("worker.batch") as outer:
        with worker.span("inner"):
            pass
        worker.event("flush", pages=2)
    foreign = worker.records()

    router = Tracer(clock=FakeClock())
    with router.span("shards.query") as root:
        root_id = root.span_id
        router.adopt(foreign, parent_id=root_id, extra_attrs={"shard": 3})

    spans = {r["name"]: r for r in router.spans()}
    batch, inner = spans["worker.batch"], spans["inner"]
    # The foreign root hangs off the router's span; internal structure
    # and relative depth survive the id remap.
    assert batch["parent_id"] == root_id
    assert inner["parent_id"] == batch["span_id"]
    assert inner["depth"] == batch["depth"] + 1
    assert batch["attrs"]["shard"] == 3
    # Ids were re-minted into the adopting tracer's id space.
    assert batch["span_id"] != foreign[0]["span_id"] or root_id != 1
    # The event follows its span across the remap.
    (event,) = router.events("flush")
    assert event["span_id"] == batch["span_id"]
    assert event["attrs"]["shard"] == 3


def test_adopt_orphan_event_falls_back_to_parent():
    worker = Tracer(clock=FakeClock())
    worker.event("lonely")
    router = Tracer(clock=FakeClock())
    with router.span("root") as root:
        router.adopt(worker.records(), parent_id=root.span_id)
    (event,) = router.events("lonely")
    assert event["span_id"] == root.span_id


def test_adopt_without_parent_leaves_roots_detached():
    worker = Tracer(clock=FakeClock())
    with worker.span("w"):
        pass
    router = Tracer(clock=FakeClock())
    router.adopt(worker.records())
    (span,) = router.spans("w")
    assert span["parent_id"] is None


def test_null_tracer_adopt_is_inert():
    assert NULL_TRACER.adopt([{"kind": "span", "span_id": 1}]) == 0
    assert NULL_TRACER.current_span_id is None
    assert NULL_TRACER.open_spans == 0
