"""Unit tests for SLO definitions, the tracker, and budget arithmetic."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    SLOTracker,
    check_slos,
    default_serve_slos,
)


def _slo(target=0.9):
    return SLO(name="avail", target=target, good=("ok",), bad=("bad",))


# -- definitions ---------------------------------------------------------------


def test_slo_validates_target_and_good_counters():
    with pytest.raises(ValueError, match="target"):
        SLO(name="x", target=1.0, good=("ok",), bad=())
    with pytest.raises(ValueError, match="target"):
        SLO(name="x", target=0.0, good=("ok",), bad=())
    with pytest.raises(ValueError, match="good"):
        SLO(name="x", target=0.5, good=(), bad=())


def test_tracker_rejects_duplicate_names_and_bad_window():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="duplicate"):
        SLOTracker(reg, [_slo(), _slo()])
    with pytest.raises(ValueError, match="window"):
        SLOTracker(reg, [_slo()], window=0)


# -- budget arithmetic ---------------------------------------------------------


def test_burn_rate_and_budget():
    reg = MetricsRegistry()
    tracker = SLOTracker(reg, [_slo(target=0.9)])
    reg.counter("ok").inc(90)
    reg.counter("bad").inc(10)
    status = tracker.status("avail")
    # Failing at exactly the budgeted rate: burn 1.0, nothing left.
    assert status.ratio == pytest.approx(0.9)
    assert status.burn_rate == pytest.approx(1.0)
    assert status.budget_remaining == pytest.approx(0.0)
    assert status.met

    reg.counter("bad").inc(10)  # 90/110: budget overdrawn
    status = tracker.status("avail")
    assert not status.met
    assert status.burn_rate > 1.0
    assert status.budget_remaining < 0.0


def test_no_events_is_vacuously_met():
    tracker = SLOTracker(MetricsRegistry(), [_slo()])
    status = tracker.status("avail")
    assert status.ratio == 1.0
    assert status.burn_rate == 0.0
    assert status.met


def test_multiple_counters_sum_per_side():
    reg = MetricsRegistry()
    slo = SLO(name="a", target=0.5, good=("g1", "g2"), bad=("b1", "b2"))
    tracker = SLOTracker(reg, [slo])
    reg.counter("g1").inc(2)
    reg.counter("g2").inc(1)
    reg.counter("b1").inc(1)
    status = tracker.status("a")
    assert (status.good, status.bad) == (3, 1)


def test_unknown_slo_name_raises():
    with pytest.raises(KeyError):
        SLOTracker(MetricsRegistry(), [_slo()]).status("nope")


# -- sliding window ------------------------------------------------------------


def test_window_sees_recent_incident_before_cumulative():
    reg = MetricsRegistry()
    tracker = SLOTracker(reg, [_slo(target=0.9)], window=2)
    reg.counter("ok").inc(1000)  # long healthy history
    for _ in range(3):
        tracker.checkpoint()
    reg.counter("bad").inc(50)  # fresh incident inside the window
    status = tracker.status("avail")
    assert status.met                      # cumulative barely moves
    assert status.window_ratio == pytest.approx(0.0)
    assert status.window_burn_rate > status.burn_rate


def test_window_is_bounded():
    reg = MetricsRegistry()
    tracker = SLOTracker(reg, [_slo()], window=2)
    reg.counter("bad").inc(10)
    for _ in range(10):
        tracker.checkpoint()
    reg.counter("ok").inc(5)
    status = tracker.status("avail")
    # The old failures predate every retained checkpoint: only the new
    # good events land in the window.
    assert (status.window_good, status.window_bad) == (5, 0)


# -- harness helpers -----------------------------------------------------------


def test_violations_and_to_dict():
    reg = MetricsRegistry()
    tracker = SLOTracker(reg, default_serve_slos())
    reg.counter("serve.queries_ok").inc(50)
    reg.counter("serve.shed_queries").inc(50)
    names = [v.slo.name for v in tracker.violations()]
    assert names == ["availability"]
    export = tracker.to_dict()
    assert set(export) == {"availability", "freshness"}
    assert export["availability"]["met"] is False
    assert export["freshness"]["met"] is True


def test_check_slos_tolerates_absent_tracker():
    assert check_slos(None) == (True, [])
    reg = MetricsRegistry()
    tracker = SLOTracker(reg, [_slo()])
    ok, statuses = check_slos(tracker)
    assert ok and statuses[0]["name"] == "avail"


def test_default_serve_slos_cover_frontend_counters():
    for slo in default_serve_slos():
        for name in slo.good + slo.bad:
            assert name.startswith("serve.")
