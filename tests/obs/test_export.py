"""Unit tests for metrics export: snapshots, Prometheus text, breakdowns."""

import json

import pytest

from repro.obs.export import (
    MetricsSnapshotter,
    accumulate,
    latency_breakdown,
    prometheus_text,
    read_snapshots,
    shard_shares,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    """Settable clock for deterministic snapshot cadence."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# -- snapshotter ---------------------------------------------------------------


def test_first_snapshot_is_full_later_ones_delta_only(tmp_path):
    reg = MetricsRegistry()
    reg.counter("ops").inc(5)
    reg.gauge("depth").set(2)
    path = str(tmp_path / "m.jsonl")
    snap = MetricsSnapshotter(reg, path, interval_s=1.0,
                              clock=FakeClock(), wall_clock=lambda: 99.0)

    first = snap.snapshot()
    assert set(first["metrics"]) == {"ops", "depth"}
    assert first["metrics"]["ops"]["delta"] == 5
    assert first["seq"] == 0 and first["wall"] == 99.0

    reg.counter("ops").inc(2)  # gauge unchanged: only the counter ships
    second = snap.snapshot()
    assert set(second["metrics"]) == {"ops"}
    assert second["metrics"]["ops"] == {"type": "counter", "value": 7,
                                        "delta": 2}

    third = snap.snapshot()  # nothing moved: record written, empty map
    assert third["metrics"] == {}
    assert [r["seq"] for r in read_snapshots(path)] == [0, 1, 2]


def test_snapshot_histogram_delta_counts(tmp_path):
    reg = MetricsRegistry()
    hist = reg.histogram("io", bounds=[1.0, 2.0, 4.0])
    snap = MetricsSnapshotter(reg, str(tmp_path / "m.jsonl"),
                              clock=FakeClock())
    hist.record(1)
    assert snap.snapshot()["metrics"]["io"]["delta_count"] == 1
    hist.record(3)
    hist.record(3)
    entry = snap.snapshot()["metrics"]["io"]
    assert entry["delta_count"] == 2
    assert entry["count"] == 3  # entries stay cumulative


def test_maybe_snapshot_honours_interval(tmp_path):
    clock = FakeClock()
    reg = MetricsRegistry()
    snap = MetricsSnapshotter(reg, str(tmp_path / "m.jsonl"),
                              interval_s=10.0, clock=clock)
    assert snap.maybe_snapshot()       # first is always due
    assert not snap.maybe_snapshot()   # no time passed
    clock.t = 9.0
    assert not snap.due()
    clock.t = 10.0
    assert snap.maybe_snapshot()


def test_snapshotter_rejects_nonpositive_interval(tmp_path):
    with pytest.raises(ValueError, match="interval"):
        MetricsSnapshotter(MetricsRegistry(), str(tmp_path / "m.jsonl"),
                           interval_s=0.0)


def test_accumulate_rebuilds_final_registry(tmp_path):
    reg = MetricsRegistry()
    path = str(tmp_path / "m.jsonl")
    snap = MetricsSnapshotter(reg, path, clock=FakeClock())
    reg.counter("ops").inc(1)
    reg.histogram("io", bounds=[1.0, 8.0]).record(4)
    snap.snapshot()
    reg.counter("ops").inc(9)
    reg.gauge("pages").set(7)
    snap.snapshot()

    rebuilt = accumulate(read_snapshots(path))
    assert rebuilt.value("ops") == 10
    assert rebuilt.value("pages") == 7
    assert rebuilt.get("io").count == 1


# -- prometheus exposition -----------------------------------------------------


def test_prometheus_text_exposes_all_three_kinds():
    reg = MetricsRegistry()
    reg.counter("serve.ok").inc(3)
    reg.gauge("tree.height").set(4)
    reg.histogram("io", bounds=[1.0, 2.0]).record(1.5)
    text = prometheus_text(reg)
    assert "# TYPE serve_ok counter" in text
    assert "serve_ok 3" in text
    assert "tree_height 4" in text
    assert 'io_bucket{le="2.0"} 1' in text
    assert 'io_bucket{le="+Inf"} 1' in text
    assert "io_sum 1.5" in text
    assert "io_count 1" in text


# -- latency breakdown and shard shares ----------------------------------------


def _span(name, dur, attrs):
    return {"kind": "span", "name": name, "dur": dur, "attrs": attrs}


def test_latency_breakdown_stages_are_additive():
    records = [
        _span("shards.query_batch", 1.0,
              {"trace_id": 7, "encode_s": 0.1, "wait_s": 0.6}),
        # Two parallel workers: raw wall 0.8 exceeds covered wait 0.6.
        _span("worker.batch", 0.5, {"trace_id": 7, "cpu_s": 0.4}),
        _span("worker.batch", 0.3, {"trace_id": 7, "cpu_s": 0.1}),
    ]
    b = latency_breakdown(records, queue_s=0.2)
    total = b["queue_s"] + b["router_s"] + b["wire_s"] + \
        b["worker_cpu_s"] + b["worker_io_s"]
    assert total == pytest.approx(b["total_s"])
    assert b["total_s"] == pytest.approx(1.2)
    assert b["router_s"] == pytest.approx(0.3)   # 1.0 - 0.6 - 0.1
    assert b["worker_wall_raw_s"] == pytest.approx(0.8)
    assert b["worker_cpu_raw_s"] == pytest.approx(0.5)


def test_latency_breakdown_ignores_untraced_worker_spans():
    records = [
        _span("shards.query", 1.0,
              {"trace_id": 1, "encode_s": 0.0, "wait_s": 0.5}),
        _span("worker.batch", 0.4, {"trace_id": 1, "cpu_s": 0.2}),
        # From an untraced single-op apply: no trace id, must not count.
        _span("worker.batch", 9.0, {"cpu_s": 9.0}),
    ]
    assert latency_breakdown(records)["worker_wall_raw_s"] == \
        pytest.approx(0.4)


def test_latency_breakdown_empty_trace():
    b = latency_breakdown([], queue_s=0.0)
    assert b["total_s"] == 0.0
    assert b["worker_cpu_s"] == 0.0


def test_shard_shares_sum_to_one():
    records = [
        _span("worker.batch", 0.3, {"shard": 0}),
        _span("worker.batch", 0.1, {"shard": 1}),
        _span("worker.batch", 0.1, {"shard": 0}),
        _span("other", 5.0, {"shard": 2}),       # not a worker span
        _span("worker.batch", 0.5, {}),          # unadopted: no shard
    ]
    shares = shard_shares(records)
    assert shares == {0: pytest.approx(0.8), 1: pytest.approx(0.2)}
    assert shard_shares([]) == {}


def test_snapshot_file_round_trips_as_json(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a").inc()
    path = str(tmp_path / "m.jsonl")
    MetricsSnapshotter(reg, path, clock=FakeClock()).snapshot()
    for line in open(path, encoding="utf-8"):
        record = json.loads(line)
        assert record["kind"] == "metrics_snapshot"
