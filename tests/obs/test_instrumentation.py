"""Integration tests: the instrumented tree, forest, buffer and runner.

The two properties that matter:

* the **disabled path is a regression-free no-op** — an uninstrumented
  tree answers identically and performs identical page I/O to an
  instrumented one;
* the **instrumented numbers are true** — event attribute sums line up
  with the registry counters, and both line up with the tree's own
  structural census (``audit()``) through the leaf-entry conservation
  identity.
"""

import random

import pytest

from repro.core.clock import SimulationClock
from repro.core.presets import forest_config, rexp_config
from repro.core.tree import MovingObjectTree
from repro.experiments.adapters import ForestAdapter, TreeAdapter
from repro.experiments.runner import run_workload
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect
from repro.obs import MetricsRegistry, Tracer
from repro.obs.trace import sum_event_attr
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload


def make_tree(**overrides):
    clock = SimulationClock()
    defaults = dict(page_size=512, buffer_pages=8, default_ui=10.0)
    defaults.update(overrides)
    return MovingObjectTree(rexp_config().with_(**defaults), clock), clock


def random_point(rng, t, life=20.0):
    return MovingPoint(
        (rng.uniform(0, 100), rng.uniform(0, 100)),
        (rng.uniform(-2, 2), rng.uniform(-2, 2)),
        t,
        t + rng.uniform(0.5, life),
    )


def churn(tree, clock, rng, inserts=300, life=15.0):
    """Insert/delete/query churn in two phases.

    A growth phase (long-lived entries, time barely advancing) forces
    splits, forced reinserts and root growth; a decay phase (short
    lifetimes, time racing ahead) forces lazy purges, condense drops
    and root shrinkage.
    """
    live = {}
    grow = inserts // 2
    t = 0.0
    for i in range(inserts):
        t += 0.02 if i < grow else 1.0
        clock.advance_to(t)
        point = random_point(rng, t, 500.0 if i < grow else life)
        tree.insert(i, point)
        live[i] = point
        if i % 7 == 3 and live:
            victim = rng.choice(sorted(live))
            tree.delete(victim, live.pop(victim))
        if i % 11 == 5:
            x, y = rng.uniform(0, 80), rng.uniform(0, 80)
            tree.query(TimesliceQuery(
                Rect((x, y), (x + 30, y + 30)), t + rng.uniform(0, 5)
            ))


def small_workload(insertions=600, population=80):
    return generate_uniform_workload(
        UniformParams(
            target_population=population,
            insertions=insertions,
            update_interval=30.0,
            seed=1,
        ),
        FixedPeriod(60.0),
    )


# -- the disabled path is a no-op ----------------------------------------------


def test_null_path_regression_identical_io_and_answers():
    """Enabling observability must not change answers or page I/O."""
    runs = []
    for instrumented in (False, True):
        tree, clock = make_tree()
        if instrumented:
            tree.enable_observability(MetricsRegistry(), Tracer())
        rng = random.Random(5)
        answers = []
        live = {}
        for i in range(200):
            t = i * 0.5
            clock.advance_to(t)
            point = random_point(rng, t)
            tree.insert(i, point)
            live[i] = point
            if i % 5 == 2:
                victim = rng.choice(sorted(live))
                tree.delete(victim, live.pop(victim))
            if i % 6 == 1:
                x, y = rng.uniform(0, 80), rng.uniform(0, 80)
                answers.append(sorted(tree.query(TimesliceQuery(
                    Rect((x, y), (x + 30, y + 30)), t + 2.0
                ))))
        runs.append((
            answers,
            tree.stats.reads,
            tree.stats.writes,
            tree.page_count,
            tree.audit().leaf_entries,
        ))
    assert runs[0] == runs[1]


def test_disable_observability_restores_fast_path():
    tree, clock = make_tree()
    registry = MetricsRegistry()
    tree.enable_observability(registry, Tracer())
    tree.insert(1, MovingPoint((1.0, 1.0), (0.0, 0.0), 0.0, 50.0))
    assert registry.value("tree.inserts") == 1
    tree.disable_observability()
    tree.insert(2, MovingPoint((2.0, 2.0), (0.0, 0.0), 0.0, 50.0))
    assert registry.value("tree.inserts") == 1  # frozen after disable
    assert tree._obs is None and tree._tracer is None


def test_metrics_only_and_tracer_only_configurations():
    for registry, tracer in (
        (MetricsRegistry(), None),
        (None, Tracer()),
    ):
        tree, clock = make_tree()
        tree.enable_observability(registry, tracer)
        churn(tree, clock, random.Random(2), inserts=80)
        tree.check_invariants()
        if registry is not None:
            assert registry.value("tree.inserts") == 80
        if tracer is not None:
            assert len(tracer.spans("tree.insert")) == 80


# -- the instrumented numbers are true -----------------------------------------


def test_counters_events_and_audit_agree():
    """Trace events, registry counters and audit() tell one story."""
    tree, clock = make_tree()
    registry, tracer = MetricsRegistry(), Tracer(capacity=1 << 20)
    tree.enable_observability(registry, tracer)
    churn(tree, clock, random.Random(7), inserts=400, life=12.0)

    value = registry.value
    records = tracer.records()
    totals = tracer.event_totals()
    assert tracer.dropped == 0

    # Every event family is exercised by the churn.
    for name in ("split", "forced_reinsert", "lazy_purge", "condense_drop"):
        assert totals.get(name, 0) > 0, f"churn produced no {name}"

    # Event tallies match their counters.
    assert totals["split"] == value("tree.splits")
    assert totals["forced_reinsert"] == value("tree.forced_reinserts")
    assert totals["lazy_purge"] == value("tree.purge_events")
    assert totals["condense_drop"] == value("tree.condense_drops")
    assert totals.get("root_grow", 0) == value("tree.root_grows")
    assert totals.get("root_shrink", 0) == value("tree.root_shrinks")

    # Event attribute sums match their counters.
    assert sum_event_attr(records, "lazy_purge", "purged") == value(
        "tree.purged_leaf_entries"
    )
    assert sum_event_attr(records, "lazy_purge", "subtrees") == value(
        "tree.purged_subtrees"
    )
    assert sum_event_attr(records, "subtree_dealloc", "leaf_entries") == value(
        "tree.purged_subtree_leaf_entries"
    )
    assert sum_event_attr(records, "forced_reinsert", "entries") == value(
        "tree.reinserted_entries"
    )

    # Leaf-entry conservation: additions minus every removal class is
    # exactly what the structural census finds in the tree.
    leaf_entries = (
        value("tree.leaf_entries_added")
        - value("tree.leaf_entries_deleted")
        - value("tree.leaf_entries_condensed")
        - value("tree.leaf_entries_reinserted")
        - value("tree.purged_leaf_entries")
        - value("tree.purged_subtree_leaf_entries")
    )
    audit = tree.audit()
    assert leaf_entries == audit.leaf_entries
    assert value("tree.leaf_entries") == audit.leaf_entries  # gauge

    # Per-query histograms saw every query.
    queries = value("tree.queries")
    hist = registry.get("tree.query_nodes_visited")
    assert queries > 0 and hist.count == queries
    assert registry.get("tree.query_descent_depth").count == queries
    assert len(tracer.spans("tree.query")) == queries


def test_query_span_attributes_match_histograms():
    tree, clock = make_tree()
    registry, tracer = MetricsRegistry(), Tracer()
    tree.enable_observability(registry, tracer)
    for i in range(40):
        clock.advance_to(float(i))
        tree.insert(i, random_point(random.Random(i), float(i), life=100.0))
    tree.query(TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), 41.0))
    (span,) = tracer.spans("tree.query")
    attrs = span["attrs"]
    assert attrs["kind"] == "TimesliceQuery"
    assert attrs["nodes"] == registry.get("tree.query_nodes_visited").max
    assert attrs["depth"] == tree.height - 1
    assert attrs["results"] > 0


def test_buffer_counters_match_disk_reads():
    tree, clock = make_tree(buffer_pages=4)
    churn(tree, clock, random.Random(3), inserts=150)
    pool = tree.buffer
    # A buffer miss is the only way a disk read happens.
    assert pool.misses == tree.stats.reads
    assert pool.hits > 0 and pool.evictions > 0
    assert pool.hit_rate == pytest.approx(
        pool.hits / (pool.hits + pool.misses)
    )
    empty = type(pool)(tree.disk, 4)
    assert empty.hit_rate == 0.0


def test_buffer_gauges_registered():
    tree, clock = make_tree()
    registry = MetricsRegistry()
    tree.enable_observability(registry)
    churn(tree, clock, random.Random(4), inserts=60)
    assert registry.value("buffer.hits") == tree.buffer.hits
    assert registry.value("buffer.misses") == tree.buffer.misses
    assert registry.value("buffer.hit_rate") == pytest.approx(
        tree.buffer.hit_rate
    )
    assert registry.value("tree.pages") == tree.page_count


def test_level_occupancy_matches_audit():
    tree, clock = make_tree()
    churn(tree, clock, random.Random(9), inserts=250, life=100.0)
    occupancy = tree.level_occupancy()
    audit = tree.audit()
    assert sum(nodes for nodes, _ in occupancy.values()) == audit.nodes
    assert occupancy[0][1] == audit.leaf_entries
    assert max(occupancy) == tree.height - 1
    internal = sum(
        entries for level, (_, entries) in occupancy.items() if level > 0
    )
    assert internal == audit.internal_entries


# -- forest scoping ------------------------------------------------------------


def test_forest_scoped_registries_and_routing_counters():
    adapter = ForestAdapter(
        "forest", forest_config(partitions=3, page_size=512, buffer_pages=9)
    )
    registry, tracer = MetricsRegistry(), Tracer()
    adapter.enable_observability(registry, tracer)
    rng = random.Random(11)
    for i in range(120):
        adapter.advance_time(i * 0.5)
        adapter.insert(i, random_point(rng, i * 0.5, life=60.0))
    routed = sum(
        registry.value(f"partition{i}.forest.routed_ops") for i in range(3)
    )
    assert routed == 120
    inserts = sum(
        registry.value(f"partition{i}.tree.inserts") for i in range(3)
    )
    assert inserts == 120
    assert registry.value("forest.partitions") == 3
    assert registry.value("forest.pages") == adapter.forest.page_count
    assert len(tracer.spans("tree.insert")) == 120
    hits, misses, evictions = adapter.buffer_counters
    assert misses == sum(t.stats.reads for t in adapter.forest.trees)
    assert hits >= 0 and evictions >= 0


# -- runner integration --------------------------------------------------------


def test_run_workload_profile_populates_percentiles():
    workload = small_workload()
    adapter = TreeAdapter(
        "Rexp-tree", rexp_config(page_size=512, buffer_pages=8)
    )
    registry, tracer = MetricsRegistry(), Tracer()
    result = run_workload(adapter, workload, registry=registry, tracer=tracer)
    assert result.search_ops > 0 and result.update_ops > 0
    assert result.search_io_p99 >= result.search_io_p95 >= result.search_io_p50
    assert result.update_io_p99 >= result.update_io_p50 >= 0.0
    assert result.search_latency_p99 >= result.search_latency_p50 > 0.0
    assert result.update_latency_p99 >= result.update_latency_p50 > 0.0
    assert result.buffer_hits + result.buffer_misses > 0
    assert result.buffer_hit_rate == pytest.approx(
        result.buffer_hits / (result.buffer_hits + result.buffer_misses)
    )
    assert registry.value("runner.buffer_hit_rate") == pytest.approx(
        result.buffer_hit_rate
    )
    assert registry.get("runner.search_latency_s").count == result.search_ops
    assert "search p50/p95/p99" in result.summary()


def test_run_workload_unprofiled_leaves_latency_zero():
    workload = small_workload(insertions=200, population=40)
    adapter = TreeAdapter(
        "Rexp-tree", rexp_config(page_size=512, buffer_pages=8)
    )
    result = run_workload(adapter, workload)
    assert result.search_latency_p99 == 0.0
    assert result.update_latency_p99 == 0.0
    # IO percentiles come from always-on OperationStats histograms.
    assert result.search_io_p99 >= result.search_io_p50 >= 0.0
    # Buffer counters are always on (the index may fit the pool, so
    # misses can be zero — but every page touch is a hit or a miss).
    assert result.buffer_hits + result.buffer_misses > 0


def test_trace_jsonl_purge_sum_matches_audit_accounting(tmp_path):
    """Acceptance: the exported trace's purge sums are consistent with
    the final audit through the leaf conservation identity."""
    workload = small_workload()
    adapter = TreeAdapter(
        "Rexp-tree", rexp_config(page_size=512, buffer_pages=8)
    )
    registry, tracer = MetricsRegistry(), Tracer(capacity=1 << 20)
    result = run_workload(adapter, workload, registry=registry, tracer=tracer)
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(str(path))
    from repro.obs.trace import read_jsonl

    records = read_jsonl(str(path))
    purged = (
        sum_event_attr(records, "lazy_purge", "purged")
        + sum_event_attr(records, "subtree_dealloc", "leaf_entries")
    )
    value = registry.value
    expected_leaves = (
        value("tree.leaf_entries_added")
        - value("tree.leaf_entries_deleted")
        - value("tree.leaf_entries_condensed")
        - value("tree.leaf_entries_reinserted")
        - purged
    )
    assert expected_leaves == adapter.tree.audit().leaf_entries
    assert expected_leaves == result.leaf_entries


def test_operation_stats_histograms_track_every_op():
    workload = small_workload(insertions=200, population=40)
    adapter = TreeAdapter(
        "Rexp-tree", rexp_config(page_size=512, buffer_pages=8)
    )
    result = run_workload(adapter, workload)
    stats = adapter.op_stats
    assert stats.search_io_hist.count == stats.search_ops
    assert stats.update_io_hist.count == stats.update_ops
    assert stats.search_io_hist.mean == pytest.approx(stats.avg_search_io)
    assert stats.update_io_hist.mean == pytest.approx(stats.avg_update_io)
    assert result.search_io_p50 == stats.search_io_p50


def test_summary_reports_auxiliary_and_setup_io():
    from repro.experiments.runner import RunResult

    result = RunResult(
        adapter="x", workload="w",
        search_ops=10, search_io_p50=2, search_io_p95=5, search_io_p99=8,
        auxiliary_io=123, avg_update_io_with_aux=4.5, setup_io=77,
    )
    line = result.summary()
    assert "aux=123" in line
    assert "update+aux=4.50/op" in line
    assert "setup=77" in line
    assert "search p50/p95/p99=2/5/8" in line
    bare = RunResult(adapter="x", workload="w")
    assert "aux=" not in bare.summary()
    assert "setup=" not in bare.summary()
