"""Unit tests for the metric primitives and the registry."""

import json
import math

import pytest

from repro.obs.metrics import (
    IO_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

# -- counters and gauges -------------------------------------------------------


def test_counter_increments():
    c = Counter("ops")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert c.to_dict() == {"type": "counter", "value": 5}


def test_gauge_set_and_derived():
    g = Gauge("x")
    g.set(2.5)
    assert g.value == 2.5
    backing = [10]
    derived = Gauge("y", fn=lambda: backing[0])
    assert derived.value == 10
    backing[0] = 11
    assert derived.value == 11


# -- histograms ----------------------------------------------------------------


def test_histogram_percentiles_on_unit_buckets():
    """Integer samples in the unit-width IO buckets.

    A percentile whose rank lands exactly on a bucket boundary is exact
    (the bucket's upper bound is the recorded integer); a rank falling
    inside a bucket interpolates within that bucket's unit interval.
    """
    h = Histogram("io")
    for value in [2] * 50 + [5] * 40 + [9] * 10:
        h.record(value)
    assert h.count == 100
    assert h.p50 == pytest.approx(2.0)  # rank 50 closes the value-2 bucket
    assert h.p90 == pytest.approx(5.0)  # rank 90 closes the value-5 bucket
    assert h.p95 == pytest.approx(8.5)  # interpolated inside (8, 9]
    assert h.percentile(100.0) == pytest.approx(9.0)
    assert h.mean == pytest.approx((2 * 50 + 5 * 40 + 9 * 10) / 100)
    assert h.min == 2 and h.max == 9


def test_histogram_single_value():
    h = Histogram("io")
    h.record(7)
    for p in (0.0, 50.0, 99.9, 100.0):
        assert h.percentile(p) == pytest.approx(7.0)


def test_histogram_empty():
    h = Histogram("io")
    assert h.count == 0
    assert h.p50 == 0.0
    assert h.mean == 0.0
    assert h.to_dict()["min"] is None


def test_histogram_percentiles_clamped_to_observed_range():
    h = Histogram("lat", bounds=[1.0, 10.0, 100.0])
    h.record_many([3.0, 4.0, 5.0])
    assert 3.0 <= h.p50 <= 5.0
    assert h.percentile(100.0) == pytest.approx(5.0)
    assert h.percentile(0.0) >= 3.0


def test_histogram_overflow_bucket():
    h = Histogram("io", bounds=[1.0, 2.0])
    h.record(1e9)
    assert h.count == 1
    assert h.p99 == pytest.approx(1e9)


def test_histogram_monotone_percentiles():
    h = Histogram("io")
    for value in range(0, 200, 3):
        h.record(value)
    ps = [h.percentile(p) for p in (10, 25, 50, 75, 90, 95, 99)]
    assert ps == sorted(ps)


def test_histogram_factories_and_validation():
    lin = Histogram.linear("l", 0.0, 2.0, 5)
    assert lin.bounds == [0.0, 2.0, 4.0, 6.0, 8.0]
    exp = Histogram.exponential("e", 1.0, 2.0, 4)
    assert exp.bounds == [1.0, 2.0, 4.0, 8.0]
    with pytest.raises(ValueError):
        Histogram("bad", bounds=[2.0, 1.0])
    with pytest.raises(ValueError):
        Histogram("bad", bounds=[])
    assert IO_BUCKETS == sorted(IO_BUCKETS)


# -- registry ------------------------------------------------------------------


def test_registry_get_or_create_idempotent():
    r = MetricsRegistry()
    assert r.counter("a") is r.counter("a")
    assert r.histogram("h") is r.histogram("h")
    with pytest.raises(TypeError):
        r.gauge("a")  # already a counter


def test_registry_scope_prefixes_but_shares_store():
    r = MetricsRegistry()
    scope = r.scope("partition0")
    scope.counter("tree.splits").inc(3)
    nested = scope.scope("sub.")
    nested.gauge("g").set(1)
    assert r.value("partition0.tree.splits") == 3
    assert "partition0.sub.g" in r.names()
    assert set(scope.to_dict()) == {
        "partition0.tree.splits", "partition0.sub.g",
    }


def test_registry_export_json_round_trip(tmp_path):
    r = MetricsRegistry()
    r.counter("c").inc(2)
    r.gauge("g").set(1.5)
    r.histogram("h").record_many([1, 2, 3])
    path = tmp_path / "metrics.json"
    r.export_json(str(path))
    payload = json.loads(path.read_text())
    assert payload["c"] == {"type": "counter", "value": 2}
    assert payload["g"]["value"] == 1.5
    assert payload["h"]["count"] == 3
    assert payload == r.to_dict()


def test_registry_value_default():
    r = MetricsRegistry()
    assert r.value("missing", default=-1) == -1
    assert r.get("missing") is None


# -- the disabled path ---------------------------------------------------------


def test_null_registry_is_inert():
    assert not NULL_REGISTRY
    c = NULL_REGISTRY.counter("anything")
    c.inc(5)
    assert c.value == 0
    h = NULL_REGISTRY.histogram("h")
    h.record(3)
    h.record_many([1, 2])
    assert h.count == 0 and h.p99 == 0.0
    assert math.isinf(h.min)
    g = NULL_REGISTRY.gauge("g")
    g.set(9)
    assert g.value == 0
    assert NULL_REGISTRY.scope("x") is NULL_REGISTRY
    assert NULL_REGISTRY.to_dict() == {}
    assert NULL_REGISTRY.names() == []
    assert NULL_REGISTRY.value("x", default=7) == 7


# -- merge and from_dict (per-shard aggregation) -------------------------------


def shard_registry(base: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("tree.splits").inc(base)
    reg.gauge("forest.pages").set(10 * base)
    h = reg.histogram("io.reads", bounds=[1.0, 2.0, 4.0])
    h.record_many([0.5 * base, 1.5, 3.0])
    return reg


def test_registry_merge_sums_counters_and_gauges():
    parent = shard_registry(1)
    parent.merge(shard_registry(2))
    assert parent.value("tree.splits") == 3
    assert parent.value("forest.pages") == 30


def test_registry_merge_histograms_bucket_wise():
    parent = shard_registry(1)
    parent.merge(shard_registry(2))
    h = parent.get("io.reads")
    assert h.count == 6
    assert h.buckets == [2, 2, 2, 0]  # 0.5+1.0 | 1.5x2 | 3.0x2 | overflow
    assert h.min == 0.5 and h.max == 3.0
    assert h.total == pytest.approx(0.5 + 1.5 + 3.0 + 1.0 + 1.5 + 3.0)


def test_registry_merge_creates_missing_metrics():
    parent = MetricsRegistry()
    parent.merge(shard_registry(4))
    assert parent.value("tree.splits") == 4
    assert parent.get("io.reads").count == 3


def test_registry_merge_rejects_mismatched_histogram_bounds():
    parent = MetricsRegistry()
    parent.histogram("io.reads", bounds=[1.0, 8.0]).record(1)
    with pytest.raises(ValueError):
        parent.merge(shard_registry(1))


def test_registry_merge_drops_derived_gauge_function():
    parent = MetricsRegistry()
    parent.gauge("forest.pages", fn=lambda: 7)
    parent.merge(shard_registry(1))
    # After a merge the gauge is a plain summed value, not a callable.
    assert parent.value("forest.pages") == 17


def test_registry_from_dict_round_trips_through_export():
    original = shard_registry(3)
    rebuilt = MetricsRegistry.from_dict(original.to_dict())
    assert rebuilt.to_dict() == original.to_dict()
    # A rebuilt registry merges like the live one.
    parent = shard_registry(1)
    parent.merge(rebuilt)
    assert parent.value("tree.splits") == 4


def test_registry_from_dict_survives_json_round_trip():
    payload = json.loads(json.dumps(shard_registry(2).to_dict()))
    rebuilt = MetricsRegistry.from_dict(payload)
    assert rebuilt.value("tree.splits") == 2
    assert rebuilt.get("io.reads").p50 == shard_registry(2).get("io.reads").p50


def test_registry_from_dict_rejects_legacy_histogram_export():
    legacy = {"io.reads": {"type": "histogram", "count": 1, "sum": 1.0,
                           "min": 1.0, "max": 1.0, "mean": 1.0,
                           "p50": 1.0, "p90": 1.0, "p95": 1.0, "p99": 1.0}}
    with pytest.raises(ValueError):
        MetricsRegistry.from_dict(legacy)


def test_registry_from_dict_empty_histogram():
    reg = MetricsRegistry()
    reg.histogram("h", bounds=[1.0])
    rebuilt = MetricsRegistry.from_dict(reg.to_dict())
    h = rebuilt.get("h")
    assert h.count == 0 and math.isinf(h.min)
    rebuilt.merge(reg)
    assert rebuilt.get("h").count == 0
