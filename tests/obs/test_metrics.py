"""Unit tests for the metric primitives and the registry."""

import json
import math

import pytest

from repro.obs.metrics import (
    IO_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

# -- counters and gauges -------------------------------------------------------


def test_counter_increments():
    c = Counter("ops")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert c.to_dict() == {"type": "counter", "value": 5}


def test_gauge_set_and_derived():
    g = Gauge("x")
    g.set(2.5)
    assert g.value == 2.5
    backing = [10]
    derived = Gauge("y", fn=lambda: backing[0])
    assert derived.value == 10
    backing[0] = 11
    assert derived.value == 11


# -- histograms ----------------------------------------------------------------


def test_histogram_percentiles_on_unit_buckets():
    """Integer samples in the unit-width IO buckets.

    A percentile whose rank lands exactly on a bucket boundary is exact
    (the bucket's upper bound is the recorded integer); a rank falling
    inside a bucket interpolates within that bucket's unit interval.
    """
    h = Histogram("io")
    for value in [2] * 50 + [5] * 40 + [9] * 10:
        h.record(value)
    assert h.count == 100
    assert h.p50 == pytest.approx(2.0)  # rank 50 closes the value-2 bucket
    assert h.p90 == pytest.approx(5.0)  # rank 90 closes the value-5 bucket
    assert h.p95 == pytest.approx(8.5)  # interpolated inside (8, 9]
    assert h.percentile(100.0) == pytest.approx(9.0)
    assert h.mean == pytest.approx((2 * 50 + 5 * 40 + 9 * 10) / 100)
    assert h.min == 2 and h.max == 9


def test_histogram_single_value():
    h = Histogram("io")
    h.record(7)
    for p in (0.0, 50.0, 99.9, 100.0):
        assert h.percentile(p) == pytest.approx(7.0)


def test_histogram_empty():
    h = Histogram("io")
    assert h.count == 0
    assert h.p50 == 0.0
    assert h.mean == 0.0
    assert h.to_dict()["min"] is None


def test_histogram_percentiles_clamped_to_observed_range():
    h = Histogram("lat", bounds=[1.0, 10.0, 100.0])
    h.record_many([3.0, 4.0, 5.0])
    assert 3.0 <= h.p50 <= 5.0
    assert h.percentile(100.0) == pytest.approx(5.0)
    assert h.percentile(0.0) >= 3.0


def test_histogram_overflow_bucket():
    h = Histogram("io", bounds=[1.0, 2.0])
    h.record(1e9)
    assert h.count == 1
    assert h.p99 == pytest.approx(1e9)


def test_histogram_monotone_percentiles():
    h = Histogram("io")
    for value in range(0, 200, 3):
        h.record(value)
    ps = [h.percentile(p) for p in (10, 25, 50, 75, 90, 95, 99)]
    assert ps == sorted(ps)


def test_histogram_factories_and_validation():
    lin = Histogram.linear("l", 0.0, 2.0, 5)
    assert lin.bounds == [0.0, 2.0, 4.0, 6.0, 8.0]
    exp = Histogram.exponential("e", 1.0, 2.0, 4)
    assert exp.bounds == [1.0, 2.0, 4.0, 8.0]
    with pytest.raises(ValueError):
        Histogram("bad", bounds=[2.0, 1.0])
    with pytest.raises(ValueError):
        Histogram("bad", bounds=[])
    assert IO_BUCKETS == sorted(IO_BUCKETS)


# -- registry ------------------------------------------------------------------


def test_registry_get_or_create_idempotent():
    r = MetricsRegistry()
    assert r.counter("a") is r.counter("a")
    assert r.histogram("h") is r.histogram("h")
    with pytest.raises(TypeError):
        r.gauge("a")  # already a counter


def test_registry_scope_prefixes_but_shares_store():
    r = MetricsRegistry()
    scope = r.scope("partition0")
    scope.counter("tree.splits").inc(3)
    nested = scope.scope("sub.")
    nested.gauge("g").set(1)
    assert r.value("partition0.tree.splits") == 3
    assert "partition0.sub.g" in r.names()
    assert set(scope.to_dict()) == {
        "partition0.tree.splits", "partition0.sub.g",
    }


def test_registry_export_json_round_trip(tmp_path):
    r = MetricsRegistry()
    r.counter("c").inc(2)
    r.gauge("g").set(1.5)
    r.histogram("h").record_many([1, 2, 3])
    path = tmp_path / "metrics.json"
    r.export_json(str(path))
    payload = json.loads(path.read_text())
    assert payload["c"] == {"type": "counter", "value": 2}
    assert payload["g"]["value"] == 1.5
    assert payload["h"]["count"] == 3
    assert payload == r.to_dict()


def test_registry_value_default():
    r = MetricsRegistry()
    assert r.value("missing", default=-1) == -1
    assert r.get("missing") is None


# -- the disabled path ---------------------------------------------------------


def test_null_registry_is_inert():
    assert not NULL_REGISTRY
    c = NULL_REGISTRY.counter("anything")
    c.inc(5)
    assert c.value == 0
    h = NULL_REGISTRY.histogram("h")
    h.record(3)
    h.record_many([1, 2])
    assert h.count == 0 and h.p99 == 0.0
    assert math.isinf(h.min)
    g = NULL_REGISTRY.gauge("g")
    g.set(9)
    assert g.value == 0
    assert NULL_REGISTRY.scope("x") is NULL_REGISTRY
    assert NULL_REGISTRY.to_dict() == {}
    assert NULL_REGISTRY.names() == []
    assert NULL_REGISTRY.value("x", default=7) == 7


# -- merge and from_dict (per-shard aggregation) -------------------------------


def shard_registry(base: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("tree.splits").inc(base)
    reg.gauge("forest.pages").set(10 * base)
    h = reg.histogram("io.reads", bounds=[1.0, 2.0, 4.0])
    h.record_many([0.5 * base, 1.5, 3.0])
    return reg


def test_registry_merge_sums_counters_and_gauges():
    parent = shard_registry(1)
    parent.merge(shard_registry(2))
    assert parent.value("tree.splits") == 3
    assert parent.value("forest.pages") == 30


def test_registry_merge_histograms_bucket_wise():
    parent = shard_registry(1)
    parent.merge(shard_registry(2))
    h = parent.get("io.reads")
    assert h.count == 6
    assert h.buckets == [2, 2, 2, 0]  # 0.5+1.0 | 1.5x2 | 3.0x2 | overflow
    assert h.min == 0.5 and h.max == 3.0
    assert h.total == pytest.approx(0.5 + 1.5 + 3.0 + 1.0 + 1.5 + 3.0)


def test_registry_merge_creates_missing_metrics():
    parent = MetricsRegistry()
    parent.merge(shard_registry(4))
    assert parent.value("tree.splits") == 4
    assert parent.get("io.reads").count == 3


def test_registry_merge_rejects_mismatched_histogram_bounds():
    parent = MetricsRegistry()
    parent.histogram("io.reads", bounds=[1.0, 8.0]).record(1)
    with pytest.raises(ValueError):
        parent.merge(shard_registry(1))


def test_registry_merge_drops_derived_gauge_function():
    parent = MetricsRegistry()
    parent.gauge("forest.pages", fn=lambda: 7)
    parent.merge(shard_registry(1))
    # After a merge the gauge is a plain summed value, not a callable.
    assert parent.value("forest.pages") == 17


def test_registry_from_dict_round_trips_through_export():
    original = shard_registry(3)
    rebuilt = MetricsRegistry.from_dict(original.to_dict())
    assert rebuilt.to_dict() == original.to_dict()
    # A rebuilt registry merges like the live one.
    parent = shard_registry(1)
    parent.merge(rebuilt)
    assert parent.value("tree.splits") == 4


def test_registry_from_dict_survives_json_round_trip():
    payload = json.loads(json.dumps(shard_registry(2).to_dict()))
    rebuilt = MetricsRegistry.from_dict(payload)
    assert rebuilt.value("tree.splits") == 2
    assert rebuilt.get("io.reads").p50 == shard_registry(2).get("io.reads").p50


def test_registry_from_dict_rejects_legacy_histogram_export():
    legacy = {"io.reads": {"type": "histogram", "count": 1, "sum": 1.0,
                           "min": 1.0, "max": 1.0, "mean": 1.0,
                           "p50": 1.0, "p90": 1.0, "p95": 1.0, "p99": 1.0}}
    with pytest.raises(ValueError):
        MetricsRegistry.from_dict(legacy)


def test_registry_from_dict_empty_histogram():
    reg = MetricsRegistry()
    reg.histogram("h", bounds=[1.0])
    rebuilt = MetricsRegistry.from_dict(reg.to_dict())
    h = rebuilt.get("h")
    assert h.count == 0 and math.isinf(h.min)
    rebuilt.merge(reg)
    assert rebuilt.get("h").count == 0


# -- histogram kinds and the time-scented foot-gun guard -----------------------


def test_histogram_kind_selects_named_bounds():
    from repro.obs.metrics import HISTOGRAM_KINDS, LATENCY_BUCKETS

    h = Histogram("serve.latency", kind="latency")
    assert h.bounds == LATENCY_BUCKETS
    assert Histogram("search_io", kind="io").bounds == HISTOGRAM_KINDS["io"]


def test_histogram_rejects_bounds_and_kind_together():
    with pytest.raises(ValueError, match="both"):
        Histogram("x", bounds=[1.0, 2.0], kind="io")


def test_histogram_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown kind"):
        Histogram("x", kind="bytes")


def test_time_scented_name_without_bounds_is_loud():
    # A histogram whose name smells like wall time must not silently
    # fall back to the unit-width I/O buckets (which top out at ~1 s
    # resolution steps of 1.0 — useless for latencies).
    for name in ("serve.latency", "wait_seconds", "op_duration",
                 "wall_time", "encode_s"):
        with pytest.raises(ValueError, match="explicit bounds"):
            Histogram(name)
    # Explicit choices stay allowed, as does a non-time name.
    Histogram("serve.latency", kind="latency")
    Histogram("wait_seconds", bounds=[0.1, 1.0])
    assert Histogram("query_nodes").bounds == IO_BUCKETS


def test_registry_histogram_threads_kind_and_scoped_view():
    reg = MetricsRegistry()
    h = reg.scope("serve.").histogram("queue_wait", kind="latency")
    assert reg.get("serve.queue_wait") is h
    with pytest.raises(ValueError, match="explicit bounds"):
        reg.histogram("serve.latency")


# -- merge/from_dict edge cases (router flush semantics) -----------------------


def test_merge_rejects_gauge_histogram_name_conflict():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("x").set(1)
    b.histogram("x", bounds=[1.0]).record(0.5)
    with pytest.raises((TypeError, ValueError)):
        a.merge(b)


def test_scoped_view_export_merges_into_parent():
    worker = MetricsRegistry()
    worker.scope("tree.").counter("inserts").inc(7)
    worker.scope("tree.").histogram("search_io", kind="io").record(3)
    parent = MetricsRegistry()
    parent.merge(MetricsRegistry.from_dict(worker.scope("tree.").to_dict()))
    assert parent.value("tree.inserts") == 7
    assert parent.get("tree.search_io").count == 1


def test_repeated_cumulative_flushes_replace_idempotently():
    # The piggyback protocol ships FULL cumulative exports; the router
    # stores the latest per shard and merges fresh each read.  Applying
    # the same (or a newer) flush repeatedly must never double-count.
    worker = MetricsRegistry()
    worker.counter("ops").inc(5)
    worker.histogram("search_io", kind="io").record(2)
    flush1 = worker.to_dict()
    worker.counter("ops").inc(3)
    flush2 = worker.to_dict()

    stored = {}
    for flush in (flush1, flush1, flush2, flush2):
        stored[0] = flush  # replace, never accumulate
        merged = MetricsRegistry()
        merged.merge(MetricsRegistry.from_dict(stored[0]))
        assert merged.value("ops") in (5, 8)
    assert merged.value("ops") == 8
    assert merged.get("search_io").count == 1


def test_from_dict_tolerates_snapshot_delta_annotations():
    reg = MetricsRegistry()
    reg.counter("ops").inc(4)
    export = reg.to_dict()
    export["ops"]["delta"] = 4  # as written by MetricsSnapshotter
    rebuilt = MetricsRegistry.from_dict(export)
    assert rebuilt.value("ops") == 4


def test_from_dict_rejects_unknown_metric_type():
    with pytest.raises((ValueError, KeyError, TypeError)):
        MetricsRegistry.from_dict({"x": {"type": "summary", "value": 1}})
