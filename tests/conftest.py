"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.geometry.kinematics import MovingPoint

# Hypothesis profiles: "ci" (the default) keeps the tier-1 suite fast;
# select the exhaustive one with HYPOTHESIS_PROFILE=thorough.  Property
# tests deliberately do not pin max_examples so the profile governs.
hypothesis_settings.register_profile("ci", max_examples=25, deadline=None)
hypothesis_settings.register_profile(
    "thorough", max_examples=400, deadline=None
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


def random_point(
    rng: random.Random,
    dims: int = 2,
    space: float = 100.0,
    max_speed: float = 3.0,
    t_ref: float = 0.0,
    max_life: float = 50.0,
    infinite_probability: float = 0.0,
) -> MovingPoint:
    """A random moving point for tests."""
    pos = tuple(rng.uniform(0.0, space) for _ in range(dims))
    vel = tuple(rng.uniform(-max_speed, max_speed) for _ in range(dims))
    if infinite_probability and rng.random() < infinite_probability:
        t_exp = float("inf")
    else:
        t_exp = t_ref + rng.uniform(0.0, max_life)
    return MovingPoint(pos, vel, t_ref, t_exp)


def random_points(rng: random.Random, n: int, **kwargs):
    return [random_point(rng, **kwargs) for _ in range(n)]
