"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "ExpT" in out and "*120*" in out
    assert "NewOb" in out


def test_layout_prints_paper_fanouts(capsys):
    assert main(["layout", "--page-size", "4096"]) == 0
    out = capsys.readouterr().out
    assert "102" in out  # internal fan-out with velocities + expiry
    assert "170" in out  # leaf fan-out


def test_workload_summary(capsys):
    code = main([
        "workload", "--kind", "network", "--expt", "40",
        "--scale", "tiny", "--population", "80", "--insertions", "800",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "insertions" in out
    assert "800" in out
    assert "ExpT=40" in out


def test_workload_uniform(capsys):
    code = main([
        "workload", "--kind", "uniform", "--expd", "90",
        "--population", "60", "--insertions", "400",
    ])
    assert code == 0
    assert "ExpD=90" in capsys.readouterr().out


def test_compare(capsys):
    code = main([
        "compare", "--expt", "40",
        "--population", "60", "--insertions", "600",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Rexp-tree" in out and "TPR-tree" in out
    assert "advantage" in out


def test_figures_micro(capsys):
    code = main([
        "figures", "fig16",
        "--population", "50", "--insertions", "400",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig16" in out
    assert "Rexp-tree" in out


def test_figures_unknown_id(capsys):
    assert main(["figures", "fig99"]) == 2
    assert "unknown figures" in capsys.readouterr().err


def test_figures_all_resolves(monkeypatch):
    """'all' expands to every known figure (checked without running)."""
    import repro.cli as cli

    seen = []

    def fake(name):
        def run(scale, seed=0):
            seen.append(name)
            from repro.experiments.figures import FigureResult
            # A figure id without shape checks keeps the fake minimal.
            fig = FigureResult(f"fake-{name}", "t", "x", "y", [1.0])
            fig.series = {"s": [1.0]}
            return fig
        return run

    monkeypatch.setattr(
        cli, "ALL_FIGURES", {f"fig{i}": fake(f"fig{i}") for i in (9, 10)}
    )
    assert cli.main(["figures", "all"]) == 0
    assert seen == ["fig10", "fig9"]


def test_forest(capsys):
    code = main([
        "forest", "--expt", "40", "--partitions", "2", "--verify",
        "--population", "60", "--insertions", "500",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Rexp-tree" in out
    assert "forest/2 (speed)" in out
    assert "oracle mismatches: 0" in out
    assert "speed" in out  # per-partition labels


def test_persist_then_recover(tmp_path, capsys):
    directory = str(tmp_path / "store")
    code = main([
        "persist", directory,
        "--population", "40", "--insertions", "300",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "durable store:" in out
    assert "auxiliary" in out

    code = main(["recover", directory])
    assert code == 0
    out = capsys.readouterr().out
    assert "recovered" in out
    assert "audit:" in out
    assert "op-seq=" in out


def test_persist_forest_and_checkpoint(tmp_path, capsys):
    directory = str(tmp_path / "forest")
    code = main([
        "persist", directory, "--index", "forest", "--partitions", "2",
        "--prepopulate", "--population", "40", "--insertions", "300",
    ])
    assert code == 0
    capsys.readouterr()

    code = main(["recover", directory, "--checkpoint"])
    assert code == 0
    out = capsys.readouterr().out
    assert "member0:" in out and "member1:" in out
    assert "checkpointed" in out


def test_faultcheck_cli_sampled(capsys):
    code = main([
        "faultcheck", "--insertions", "10", "--stride", "25",
        "--modes", "kill",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "faultcheck PASS" in out


def test_compare_durability(tmp_path, capsys):
    code = main([
        "compare", "--population", "40", "--insertions", "300",
        "--durability", str(tmp_path / "stores"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "aux=" in out


def test_soak_cli_scripted(tmp_path, capsys):
    import json

    # A tiny no-fault script with pinned-zero breaker counts keeps the
    # CLI test fast while still exercising the full SLO pipeline.
    script = {
        "expected_trips": 0,
        "expected_probes": 0,
        "expected_recoveries": 0,
    }
    script_path = tmp_path / "script.json"
    script_path.write_text(json.dumps(script))
    out_path = tmp_path / "BENCH_soak.json"
    trace_path = tmp_path / "soak_trace.jsonl"
    code = main([
        "soak", "--insertions", "300",
        "--script", str(script_path),
        "--out", str(out_path),
        "--trace", str(trace_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "soak PASS" in out
    payload = json.loads(out_path.read_text())
    assert payload["passed"] is True
    assert trace_path.exists()


def test_batch_queries_identical(capsys):
    code = main([
        "batch", "--scale", "tiny", "--queries", "120",
        "--population", "80", "--insertions", "400",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "tree" in out and "forest" in out
    assert "identical to sequential" in out


def test_top_live_run_and_artifact_replay(tmp_path, capsys):
    snapshots = str(tmp_path / "m.jsonl")
    trace = str(tmp_path / "t.jsonl")
    code = main([
        "top", "--workers", "2", "--once",
        "--insertions", "200", "--batch-ops", "64",
        "--snapshots", snapshots, "--trace-out", trace,
    ])
    live = capsys.readouterr().out
    assert code == 0
    assert "round 1/1" in live
    assert "shard load share" in live
    assert "latency breakdown" in live
    for stage in ("queue", "router", "wire", "worker-cpu", "worker-io"):
        assert stage in live
    assert "SLO availability" in live and "SLO freshness" in live

    code = main(["top", "--from-trace", trace, "--from-metrics", snapshots])
    offline = capsys.readouterr().out
    assert code == 0
    assert "from artifacts" in offline
    assert "shard load share" in offline
    # The artifact render reproduces the live run's load shares.
    live_shares = [ln.split()[-1] for ln in live.splitlines()
                   if ln.strip().startswith("shard ")]
    offline_shares = [ln.split()[-1] for ln in offline.splitlines()
                      if ln.strip().startswith("shard ")]
    assert live_shares == offline_shares


def test_knn_cli_matches_oracle(capsys):
    code = main([
        "knn", "--scale", "tiny", "--queries", "30", "--k", "5",
        "--population", "80", "--insertions", "400",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "exact" in out
    assert "mismatch" not in out


def test_soak_cli_reports_subscription_stats(tmp_path, capsys):
    import json

    script = {
        "expected_trips": 0,
        "expected_probes": 0,
        "expected_recoveries": 0,
    }
    script_path = tmp_path / "script.json"
    script_path.write_text(json.dumps(script))
    out_path = tmp_path / "BENCH_soak.json"
    code = main([
        "soak", "--insertions", "300",
        "--subscriptions", "20",
        "--script", str(script_path),
        "--out", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "soak PASS" in out
    assert "standing queries: 20 subs" in out
    payload = json.loads(out_path.read_text())
    assert payload["passed"] is True
    assert payload["subscriptions"]["dropped"] == 0


def test_replicate_cli_parity_and_promotion(capsys):
    code = main([
        "replicate", "--insertions", "150",
        "--poll-every", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 mismatches" in out
    assert "promoted" in out
    assert "0 committed batches lost" in out


def test_soak_cli_replica(tmp_path, capsys):
    import json

    out_path = tmp_path / "BENCH_soak.json"
    code = main([
        "soak", "--replica",
        "--out", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "soak PASS" in out
    assert "replication" in out
    payload = json.loads(out_path.read_text())
    assert payload["passed"] is True
    assert payload["replication"]["promotions"] == 1


def test_top_from_metrics_renders_replication_health(tmp_path, capsys):
    from repro.obs import MetricsRegistry
    from repro.obs.export import MetricsSnapshotter

    registry = MetricsRegistry()
    registry.counter("replication.polls").inc(12)
    registry.counter("replication.promotions").inc(1)
    registry.gauge("replication.staleness_seconds").set(2.5)
    registry.gauge("replication.cursor_lag_batches").set(3)
    registry.gauge("replication.last_promotion_time").set(41.0)
    snapshots = str(tmp_path / "m.jsonl")
    MetricsSnapshotter(registry, snapshots, interval_s=1e-9).snapshot()

    code = main(["top", "--from-metrics", snapshots])
    assert code == 0
    out = capsys.readouterr().out
    assert "replication: staleness 2.50s" in out
    assert "cursor lag 3 batches" in out
    assert "promotions 1" in out
    assert "last promoted at t=41.0" in out
