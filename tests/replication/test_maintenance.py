"""Tests for online WAL maintenance: incremental, gated, bounded."""

from repro.obs import MetricsRegistry
from repro.replication import OnlineMaintainer

from .helpers import catch_up, drive, make_pair, make_primary
from .test_replica import _panel


def test_idle_below_soft_limit(tmp_path):
    tree = make_primary(tmp_path / "primary")
    maintainer = OnlineMaintainer(tree.disk, wal_soft_limit=1 << 30)
    drive(tree, 5)
    assert maintainer.step() is False
    assert maintainer.run_cycle() is None
    assert maintainer.cycles == 0
    tree.close()


def test_cycle_truncates_and_preserves_answers(tmp_path):
    tree = make_primary(tmp_path / "primary")
    maintainer = OnlineMaintainer(tree.disk, wal_soft_limit=2048)
    drive(tree, 30)
    before = maintainer.wal_bytes()
    assert before >= 2048
    now = tree.clock.time
    want = [sorted(tree.query(q)) for q in _panel(now)]
    steps = maintainer.run_cycle()
    assert steps is not None and maintainer.cycles == 1
    assert maintainer.wal_bytes() < before
    assert [sorted(tree.query(q)) for q in _panel(now)] == want
    # The truncated store still accepts and persists writes.
    drive(tree, 5, start_oid=500)
    tree.close()


def test_steps_interleave_with_serving(tmp_path):
    tree = make_primary(tmp_path / "primary")
    maintainer = OnlineMaintainer(
        tree.disk, wal_soft_limit=2048, chain_budget=1
    )
    drive(tree, 30)
    # One insert between every maintenance step: each step is bounded
    # work and a write landing mid-cycle never corrupts the cycle.
    oid = 1000
    for _ in range(200):
        maintainer.step()
        drive(tree, 1, start_oid=oid, seed=oid)
        oid += 1
        if maintainer.cycles:
            break
    assert maintainer.cycles >= 1
    now = tree.clock.time
    reopened_want = [sorted(tree.query(q)) for q in _panel(now)]
    assert all(isinstance(a, list) for a in reopened_want)
    tree.close()


def test_refuse_mode_defers_the_cycle_until_shipped(tmp_path):
    registry = MetricsRegistry()
    tree, _shipper, replica, channel = make_pair(
        tmp_path, registry=registry, mode="refuse"
    )
    maintainer = OnlineMaintainer(
        tree.disk, wal_soft_limit=1024, registry=registry
    )
    drive(tree, 20)  # committed, not shipped
    # Drive one whole cycle by hand: it must reach the final phase and
    # then defer instead of destroying unshipped batches.
    assert maintainer.step() is True  # idle -> chain
    while maintainer._phase == "chain":
        maintainer.step()
    assert maintainer.step() is True  # final: deferred
    assert maintainer.deferred == 1
    assert maintainer.cycles == 0
    assert registry.value("replication.truncation_deferred") == 1

    # Once the replica catches up the same cycle goes through.
    catch_up(channel, replica)
    assert maintainer.run_cycle() is not None
    assert maintainer.cycles == 1
    assert replica.applied_op_seq == tree.disk.op_seq
    tree.close()
    replica.close()


def test_spill_mode_truncates_while_replica_lags(tmp_path):
    registry = MetricsRegistry()
    tree, shipper, replica, channel = make_pair(tmp_path, registry=registry)
    maintainer = OnlineMaintainer(
        tree.disk, wal_soft_limit=1024, registry=registry
    )
    drive(tree, 20)  # committed, not shipped
    assert maintainer.run_cycle() is not None
    assert maintainer.cycles == 1
    assert registry.value("replication.spills") >= 1
    # The spilled batches are still fetchable: the lagging replica
    # catches up from the archive and answers match.
    catch_up(channel, replica)
    assert replica.applied_op_seq == tree.disk.op_seq
    now = tree.clock.time
    want = [sorted(tree.query(q)) for q in _panel(now)]
    assert [replica.query(q) for q in _panel(now)] == want
    tree.close()
    replica.close()


def test_repeated_cycles_bound_the_footprint(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    maintainer = OnlineMaintainer(tree.disk, wal_soft_limit=4096)
    high_water = 0
    for round_ in range(6):
        drive(tree, 15, start_oid=round_ * 100)
        catch_up(channel, replica)
        maintainer.run_cycle()
        high_water = max(high_water, maintainer.wal_bytes())
    assert maintainer.cycles >= 3
    # Each cycle resets the log, so the post-cycle footprint never
    # accumulates across rounds.
    assert high_water < 64 * 1024
    assert replica.applied_op_seq == tree.disk.op_seq
    tree.close()
    replica.close()
