"""Tests for the WAL shipper: batching, cursor, spill/refuse gate."""

import os

import pytest

from repro.obs import MetricsRegistry
from repro.replication import (
    ReplicationError,
    ShippingGapError,
    ShippingLagError,
    WalShipper,
)
from repro.replication.shipper import batches_of
from repro.storage.wal import (
    _COMMIT,
    CHECKPOINT_RECORD,
    WriteAheadLog,
    scan_wal,
)

from .helpers import catch_up, drive, make_pair

# -- batches_of ---------------------------------------------------------------


def test_batches_of_groups_and_drops_uncommitted_tail(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_raw(CHECKPOINT_RECORD, _COMMIT.pack(7, 3.5))
    wal.append_page(1, b"a" * 32)
    wal.append_free(2)
    wal.append_commit(8, 4.0)
    wal.append_page(3, b"b" * 32)
    wal.append_commit(9, 5.0)
    wal.append_page(4, b"c" * 32)  # never committed
    wal.flush()
    wal.close()

    records, _valid, _torn = scan_wal(path)
    base, base_clock, batches = batches_of(records)
    assert (base, base_clock) == (7, 3.5)
    assert [b.op_seq for b in batches] == [8, 9]
    assert [b.clock_time for b in batches] == [4.0, 5.0]
    assert len(batches[0].records) == 2
    assert len(batches[1].records) == 1  # the uncommitted page is gone


def test_batches_of_rejects_checkpoint_inside_open_batch(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_page(1, b"x" * 16)
    wal.append_raw(CHECKPOINT_RECORD, _COMMIT.pack(1, 0.0))
    wal.flush()
    wal.close()
    records, _valid, _torn = scan_wal(path)
    with pytest.raises(ReplicationError):
        batches_of(records)


# -- fetch and the durable cursor ---------------------------------------------


def test_fetch_returns_dense_batches_past_cursor(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    base = shipper.acked
    drive(tree, 5)
    batches = shipper.fetch()
    assert batches[0].op_seq == base + 1
    assert batches[-1].op_seq == tree.disk.op_seq
    seqs = [b.op_seq for b in batches]
    assert seqs == list(range(base + 1, tree.disk.op_seq + 1))
    assert shipper.fetch(limit=2) == batches[:2]
    assert shipper.lag_batches() == len(batches)
    tree.close()
    replica.close()


def test_ack_is_durable_and_rejects_regression(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 3)
    committed = tree.disk.op_seq
    shipper.ack(committed)
    assert shipper.acked == committed
    # A fresh shipper over the same directory reads the same cursor.
    reopened = WalShipper(shipper.directory)
    assert reopened.acked == committed
    with pytest.raises(ReplicationError):
        shipper.ack(committed - 1)
    assert shipper.fetch() == []
    tree.close()
    replica.close()


def test_gap_past_the_cursor_is_detected(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 3)
    # Truncate the live log *outside* the shipping gate, destroying the
    # three unshipped batches, then commit two more.
    tree.disk.wal.reset(tree.disk.op_seq, tree.clock.time)
    drive(tree, 2, start_oid=100)
    with pytest.raises(ShippingGapError):
        shipper.fetch()
    tree.close()
    replica.close()


# -- the truncation gate ------------------------------------------------------


def test_spill_preserves_unshipped_batches_across_checkpoint(tmp_path):
    registry = MetricsRegistry()
    tree, shipper, replica, channel = make_pair(tmp_path, registry=registry)
    drive(tree, 6)
    committed = tree.disk.op_seq
    tree.disk.checkpoint()  # would truncate the unshipped suffix
    assert registry.value("replication.spills") == 1
    assert shipper.archive_bytes() > 0
    batches = shipper.fetch()
    assert [b.op_seq for b in batches][-1] == committed
    catch_up(channel, replica)
    assert replica.applied_op_seq == committed
    # Fully acknowledged segments are pruned on ack.
    assert shipper._segments() == []
    tree.close()
    replica.close()


def test_refuse_mode_blocks_truncation_until_shipped(tmp_path):
    tree, shipper, replica, channel = make_pair(tmp_path, mode="refuse")
    drive(tree, 4)
    with pytest.raises(ShippingLagError):
        tree.disk.checkpoint()
    # The refused checkpoint destroyed nothing: ship, then retry.
    catch_up(channel, replica)
    tree.disk.checkpoint()
    assert replica.applied_op_seq == tree.disk.op_seq
    tree.close()
    replica.close()


def test_fetch_dedupes_batches_both_archived_and_live(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 4)
    committed = tree.disk.op_seq
    # A spill whose following log reset never happened (the reset
    # faulted): the same batches sit in the archive *and* the live log.
    shipper.before_truncate(tree.disk.wal, committed)
    assert shipper.archive_bytes() > 0
    batches = shipper.fetch()
    seqs = [b.op_seq for b in batches]
    assert seqs == sorted(set(seqs)), "duplicated batches were shipped"
    assert seqs[-1] == committed
    tree.close()
    replica.close()


def test_last_committed_falls_back_to_checkpoint_base(tmp_path):
    tree, shipper, replica, channel = make_pair(tmp_path)
    drive(tree, 3)
    catch_up(channel, replica)
    committed = tree.disk.op_seq
    tree.disk.checkpoint()  # nothing unshipped: plain truncation
    last_seq, last_clock = shipper.last_committed()
    assert last_seq == committed
    assert last_clock == tree.clock.time
    assert shipper.lag_batches() == 0
    tree.close()
    replica.close()


def test_archive_bytes_counts_segments_and_cursor(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    assert shipper.archive_bytes() == os.path.getsize(shipper.cursor_path)
    drive(tree, 3)
    shipper.before_truncate(tree.disk.wal, tree.disk.op_seq)
    segment_bytes = sum(
        os.path.getsize(path) for path, _f, _l in shipper._segments()
    )
    assert segment_bytes > 0
    assert shipper.archive_bytes() == segment_bytes + os.path.getsize(
        shipper.cursor_path
    )
    tree.close()
    replica.close()
