"""Tests for the replica: apply, parity, idempotency, resume."""

import pytest

from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.replication import Replica, ReplicationError

from .helpers import catch_up, drive, make_pair


def _panel(now):
    rect = Rect((10.0, 10.0), (70.0, 70.0))
    shifted = Rect((20.0, 20.0), (80.0, 80.0))
    return [
        TimesliceQuery(rect, now),
        WindowQuery(rect, now, now + 10.0),
        MovingQuery(rect, shifted, now, now + 5.0),
    ]


def test_replica_answers_match_primary_on_all_query_classes(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    drive(tree, 40)
    catch_up(channel, replica)
    now = tree.clock.time
    queries = _panel(now)
    want = [sorted(tree.query(q)) for q in queries]
    assert [replica.query(q) for q in queries] == want
    assert replica.query_batch(queries) == want
    assert replica.knn((50.0, 50.0), now, 5) == tree.query_knn(
        (50.0, 50.0), now, 5
    )
    # Entry sets are trajectory-identical, not just answer-identical.
    # (Shipped page images re-reference entries to the commit-time
    # clock, so compare positions evaluated at a common time instead
    # of raw ``t_ref``/``pos`` fields.)
    def trajectories(entries):
        return sorted(
            (
                oid,
                tuple(round(c, 3) for c in p.position_at(now)),
                tuple(round(v, 6) for v in p.vel),
                round(p.t_exp, 6),
            )
            for p, oid in entries
        )

    assert trajectories(replica.leaf_entries()) == trajectories(
        tree.snapshot().leaf_entries()
    )
    tree.close()
    replica.close()


def test_redelivered_batches_are_idempotent(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 5)
    batches = shipper.fetch()
    assert replica.apply(batches) == len(batches)
    before = sorted(replica.leaf_entries(), key=lambda e: e[1])
    # A lost acknowledgment redelivers the same batches: a no-op.
    assert replica.apply(batches) == 0
    assert sorted(replica.leaf_entries(), key=lambda e: e[1]) == before
    assert replica.applied_op_seq == tree.disk.op_seq
    tree.close()
    replica.close()


def test_out_of_order_batch_raises(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 4)
    batches = shipper.fetch()
    with pytest.raises(ReplicationError):
        replica.apply(batches[1:])  # skips the first fresh batch
    tree.close()
    replica.close()


def test_replica_wal_stays_truncated(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    for round_ in range(5):
        drive(tree, 10, start_oid=round_ * 100)
        catch_up(channel, replica)
        # Each apply replays and truncates the replica's own log back
        # to a single checkpoint record.
        assert replica.wal_bytes() < 256, (
            f"replica WAL grew to {replica.wal_bytes()} bytes"
        )
    tree.close()
    replica.close()


def test_reopen_resumes_from_own_log(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    drive(tree, 12)
    catch_up(channel, replica)
    applied = replica.applied_op_seq
    layout = replica.layout
    directory = replica.directory
    replica.close()

    reopened = Replica(directory, layout)
    assert reopened.applied_op_seq == applied
    drive(tree, 6, start_oid=500)
    catch_up(channel, reopened)
    assert reopened.applied_op_seq == tree.disk.op_seq
    now = tree.clock.time
    want = [sorted(tree.query(q)) for q in _panel(now)]
    assert [reopened.query(q) for q in _panel(now)] == want
    tree.close()
    reopened.close()


def test_snapshot_is_isolated_from_later_applies(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    drive(tree, 10)
    catch_up(channel, replica)
    now = tree.clock.time
    snap = replica.snapshot()
    assert snap.applied_op_seq == replica.applied_op_seq
    frozen = [sorted(snap.query(q)) for q in _panel(now)]
    drive(tree, 10, start_oid=200)
    catch_up(channel, replica)
    assert [sorted(snap.query(q)) for q in _panel(now)] == frozen
    assert replica.applied_op_seq > snap.applied_op_seq
    tree.close()
    replica.close()
