"""Shared builders for the replication test suite."""

from __future__ import annotations

import random

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.replication import Replica, ShippingChannel, WalShipper

CONFIG = TreeConfig(page_size=1024, buffer_pages=32)


def make_primary(directory, config=CONFIG):
    """A durable primary tree rooted at ``directory``."""
    return MovingObjectTree.create_durable(
        str(directory), config, SimulationClock()
    )


def drive(tree, n, *, seed=0, start_oid=0, lifetime=500.0):
    """Insert ``n`` moving points, advancing the clock one tick per op."""
    rng = random.Random(seed)
    for i in range(n):
        tree.clock.advance_to(tree.clock.time + 1.0)
        now = tree.clock.time
        point = MovingPoint(
            (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            (rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)),
            now,
            now + lifetime,
        )
        tree.insert(start_oid + i, point)


def make_pair(base, *, injector=None, registry=None, mode="spill"):
    """Primary + bootstrapped replica + channel, rooted under ``base``."""
    tree = make_primary(base / "primary")
    shipper = WalShipper(str(base / "primary"), mode=mode, registry=registry)
    replica = Replica.bootstrap(
        tree.disk, shipper, str(base / "replica"), registry=registry
    )
    channel = ShippingChannel(shipper, injector=injector, registry=registry)
    return tree, shipper, replica, channel


def catch_up(channel, replica):
    """Poll, apply and acknowledge until the replica is current."""
    while True:
        batches = channel.poll()
        if not batches:
            return
        replica.apply(batches)
        channel.ack(replica.applied_op_seq)
