"""Tests for the shipping channel: wire format and fault mapping."""

import pytest

from repro.obs import MetricsRegistry
from repro.replication.channel import decode_batch, encode_batch
from repro.storage.faults import FaultInjector, TransientIOError

from .helpers import drive, make_pair


def test_encode_decode_round_trip(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 3)
    for batch in shipper.fetch():
        wire = encode_batch(batch)
        decoded = decode_batch(wire)
        assert decoded.op_seq == batch.op_seq
        assert decoded.clock_time == batch.clock_time
        assert [r.kind for r in decoded.records] == [
            r.kind for r in batch.records
        ]
        assert [r.payload for r in decoded.records] == [
            r.payload for r in batch.records
        ]
    tree.close()
    replica.close()


def test_decode_rejects_torn_and_commitless_shipments(tmp_path):
    tree, shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 1)
    batch = shipper.fetch()[0]
    wire = encode_batch(batch)
    with pytest.raises(TransientIOError):
        decode_batch(wire[:-7])  # torn tail
    with pytest.raises(TransientIOError):
        decode_batch(wire[: len(wire) // 2])  # no closing COMMIT survives
    tree.close()
    replica.close()


def test_transient_fault_means_transfer_never_happened(tmp_path):
    registry = MetricsRegistry()
    injector = FaultInjector(transient_writes=(1,))
    tree, shipper, replica, channel = make_pair(
        tmp_path, injector=injector, registry=registry
    )
    drive(tree, 3)
    with pytest.raises(TransientIOError):
        channel.poll()
    assert registry.value("replication.channel_faults") == 1
    # Nothing was acknowledged, so the retry redelivers everything.
    batches = channel.poll()
    replica.apply(batches)
    assert replica.applied_op_seq == tree.disk.op_seq
    tree.close()
    replica.close()


def test_torn_transfer_delivers_truncated_bytes_then_reconnects(tmp_path):
    registry = MetricsRegistry()
    injector = FaultInjector(crash_at_write=1, mode="torn", seed=3)
    tree, shipper, replica, channel = make_pair(
        tmp_path, injector=injector, registry=registry
    )
    drive(tree, 3)
    # The connection dies mid-transfer: the truncated bytes that made it
    # onto the wire fail the CRC scan, surfacing as a retryable fault.
    with pytest.raises(TransientIOError):
        channel.poll()
    assert registry.value("replication.channel_faults") == 1
    # The spent injector was dropped ("reconnect"): the retry is clean.
    batches = channel.poll()
    replica.apply(batches)
    channel.ack(replica.applied_op_seq)
    assert replica.applied_op_seq == tree.disk.op_seq
    assert registry.value("replication.channel_faults") == 1
    tree.close()
    replica.close()


def test_kill_before_transfer_is_retryable(tmp_path):
    injector = FaultInjector(crash_at_write=1, mode="kill")
    tree, shipper, replica, channel = make_pair(tmp_path, injector=injector)
    drive(tree, 2)
    with pytest.raises(TransientIOError):
        channel.poll()
    batches = channel.poll()
    replica.apply(batches)
    assert replica.applied_op_seq == tree.disk.op_seq
    tree.close()
    replica.close()
