"""Tests for promotion: controlled and crash failover, verification."""

import pytest

from repro.obs import MetricsRegistry
from repro.replication import (
    PromotionError,
    Replica,
    ReplicaLink,
    ReplicationError,
    ShippingChannel,
    WalShipper,
)
from repro.storage.wal import WriteAheadLog

from .helpers import CONFIG, catch_up, drive, make_pair
from .test_replica import _panel


def test_controlled_promotion_is_lossless(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    drive(tree, 30)
    catch_up(channel, replica)
    committed = tree.disk.op_seq
    now = tree.clock.time
    want = [sorted(tree.query(q)) for q in _panel(now)]
    tree.close()

    promoted = replica.promote(CONFIG, channel=channel)
    assert replica.promoted
    assert promoted.disk.op_seq == committed
    assert [sorted(promoted.query(q)) for q in _panel(now)] == want
    # The promoted tree is a full primary: it accepts writes.
    drive(promoted, 3, start_oid=900)
    assert promoted.disk.op_seq > committed
    promoted.close()


def test_crash_failover_drains_the_unshipped_tail(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    drive(tree, 20)
    catch_up(channel, replica)
    drive(tree, 10, start_oid=300)  # committed but never shipped
    committed = tree.disk.op_seq
    now = tree.clock.time
    want = [sorted(tree.query(q)) for q in _panel(now)]
    assert replica.applied_op_seq < committed
    tree.disk.abandon()  # the primary dies without a clean close

    # The drain reads the dead primary's durable log, so promotion
    # still reaches the full committed prefix: zero writes lost.
    promoted = replica.promote(CONFIG, channel=channel)
    assert promoted.disk.op_seq == committed
    assert [sorted(promoted.query(q)) for q in _panel(now)] == want
    promoted.close()


def test_verification_detects_a_gap_in_the_prefix(tmp_path):
    tree, _shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 5)
    applied = replica.applied_op_seq
    wal = WriteAheadLog(replica.wal_path)
    wal.append_commit(applied + 2, 0.0)  # applied + 1 is missing
    wal.flush()
    wal.close()
    with pytest.raises(PromotionError):
        replica.verify_committed_prefix()
    tree.close()
    replica.close()


def test_verification_detects_prefix_beyond_applied(tmp_path):
    tree, _shipper, replica, _channel = make_pair(tmp_path)
    drive(tree, 5)
    applied = replica.applied_op_seq
    wal = WriteAheadLog(replica.wal_path)
    wal.append_commit(applied + 1, 0.0)  # dense, but never applied
    wal.flush()
    wal.close()
    with pytest.raises(PromotionError):
        replica.verify_committed_prefix()
    tree.close()
    replica.close()


def test_promoted_replica_refuses_further_use(tmp_path):
    tree, _shipper, replica, channel = make_pair(tmp_path)
    drive(tree, 5)
    catch_up(channel, replica)
    tree.close()
    promoted = replica.promote(CONFIG, channel=channel)
    with pytest.raises(ReplicationError):
        replica.apply([])
    with pytest.raises(ReplicationError):
        replica.promote(CONFIG)
    promoted.close()


# -- the link -----------------------------------------------------------------


def test_link_polls_tracks_marks_and_fails_over(tmp_path):
    registry = MetricsRegistry()
    tree, _shipper, replica, channel = make_pair(tmp_path)

    def reseed(promoted):
        shipper2 = WalShipper(promoted.disk.directory)
        replica2 = Replica.bootstrap(
            promoted.disk, shipper2, str(tmp_path / "replica2")
        )
        return ShippingChannel(shipper2), replica2, None

    link = ReplicaLink(
        channel, replica,
        promote_config=CONFIG, registry=registry,
        staleness_budget=1e9, poll_every=2,
        reseed=reseed, on_promote=lambda _tree: "fresh-injector",
    )
    marks = []
    for i in range(12):
        drive(tree, 1, start_oid=i, seed=i)
        link.note_write(tree.disk.op_seq, i)
        marks.append((tree.disk.op_seq, i))
        link.tick()
    link.tick(force=True)

    assert link.ready
    assert link.polls > 0
    assert registry.value("replication.polls_within_budget") > 0
    assert registry.value("replication.polls_over_budget") == 0
    # The replica is current, so its state is declared current through
    # the stream index of the newest recorded mark.
    assert link.replica.applied_op_seq == tree.disk.op_seq
    assert link.stream_mark() == marks[-1][1]
    assert [s.name for s in link.slos()] == ["replica_staleness"]

    # Freshest-wins rebase: a base older than the applied clock yields
    # a replica snapshot; an equally fresh one yields nothing.
    snap = link.fresher_base(0.0)
    assert snap is not None
    assert snap.applied_op_seq == tree.disk.op_seq
    assert link.fresher_base(link.replica.applied_clock_time) is None

    committed = tree.disk.op_seq
    tree.disk.abandon()
    assert link.can_failover
    promoted, injector = link.failover()
    assert injector == "fresh-injector"
    assert promoted.disk.op_seq == committed
    assert link.promotions == 1
    assert registry.value("replication.promotions") == 1
    assert link.ready, "reseed should attach a fresh follower"

    # The re-seeded follower tails the promoted primary.
    drive(promoted, 4, start_oid=700)
    link.tick(force=True)
    assert link.replica.applied_op_seq == promoted.disk.op_seq
    promoted.close()
    link.replica.close()
