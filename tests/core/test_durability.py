"""Round-trip tests for durable trees and forests."""

import random

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.forest import ForestConfig, PartitionedMovingObjectForest
from repro.core.tree import MovingObjectTree
from repro.geometry import MovingQuery, Rect, TimesliceQuery, WindowQuery
from repro.geometry.kinematics import MovingPoint
from repro.storage.faults import FaultInjector, TransientIOError
from repro.storage.pagefile import FilePageStore, PageFileError

CONFIG = TreeConfig(page_size=512, buffer_pages=8)


def random_point(rng, t):
    return MovingPoint(
        (rng.uniform(0, 100), rng.uniform(0, 100)),
        (rng.uniform(-2, 2), rng.uniform(-2, 2)),
        t, t + rng.uniform(5, 60),
    )


def probe_queries(now):
    return (
        TimesliceQuery(Rect((0, 0), (100, 100)), now + 1.0),
        WindowQuery(Rect((0, 0), (60, 60)), now, now + 5.0),
        MovingQuery(
            Rect((20, 20), (70, 70)), Rect((40, 40), (90, 90)),
            now, now + 4.0,
        ),
    )


def populate(index, clock, n=80, seed=3):
    rng = random.Random(seed)
    points = {}
    for oid in range(n):
        clock.advance_to(oid * 0.05)
        point = random_point(rng, clock.time)
        points[oid] = point
        index.insert(oid, point)
    for oid in range(0, n // 3, 3):
        index.delete(oid, points[oid])
    return points


def test_tree_close_reopen_answers_identically(tmp_path):
    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(str(tmp_path / "t"), CONFIG, clock)
    populate(tree, clock)
    queries = probe_queries(clock.time)
    want = [sorted(tree.query(q)) for q in queries]
    want_audit = tree.audit()
    tree.close()

    clock2 = SimulationClock()
    reopened = MovingObjectTree.open_from(str(tmp_path / "t"), CONFIG, clock2)
    assert clock2.time == pytest.approx(clock.time)
    assert [sorted(reopened.query(q)) for q in queries] == want
    audit = reopened.audit()
    assert (audit.nodes, audit.leaf_entries) == (
        want_audit.nodes, want_audit.leaf_entries
    )
    reopened.close()


def test_open_from_validates_page_size(tmp_path):
    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(str(tmp_path / "t"), CONFIG, clock)
    tree.insert(1, random_point(random.Random(0), 0.0))
    tree.close()
    with pytest.raises(PageFileError):
        MovingObjectTree.open_from(
            str(tmp_path / "t"), CONFIG.with_(page_size=4096)
        )


def test_durable_tree_matches_simulated_io(tmp_path):
    """Acceptance criterion: index I/O identical, WAL I/O separate."""
    clock_sim = SimulationClock()
    simulated = MovingObjectTree(CONFIG, clock_sim)
    populate(simulated, clock_sim)

    clock_dur = SimulationClock()
    durable = MovingObjectTree.create_durable(
        str(tmp_path / "t"), CONFIG, clock_dur
    )
    populate(durable, clock_dur)

    assert durable.stats.snapshot() == simulated.stats.snapshot()
    assert durable.disk.wal.stats.writes > 0  # logged, but charged apart
    queries = probe_queries(clock_dur.time)
    for q in queries:
        assert sorted(durable.query(q)) == sorted(simulated.query(q))
    durable.close()


def test_persist_to_snapshots_a_simulated_tree(tmp_path):
    clock = SimulationClock()
    tree = MovingObjectTree(CONFIG, clock)
    populate(tree, clock)
    report = tree.persist_to(str(tmp_path / "snap"))
    assert report.pages == tree.page_count
    assert report.file_bytes > 0

    queries = probe_queries(clock.time)
    want = [sorted(tree.query(q)) for q in queries]
    reopened = MovingObjectTree.open_from(str(tmp_path / "snap"), CONFIG)
    assert [sorted(reopened.query(q)) for q in queries] == want
    reopened.close()


def test_checkpoint_truncates_wal(tmp_path):
    import os

    from repro.storage.pagefile import WAL_FILENAME

    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(str(tmp_path / "t"), CONFIG, clock)
    populate(tree, clock, n=40)
    wal_path = str(tmp_path / "t" / WAL_FILENAME)
    before = os.path.getsize(wal_path)
    tree.checkpoint()
    after = os.path.getsize(wal_path)
    assert after < before
    tree.close()


def test_checkpoint_requires_durable_store():
    tree = MovingObjectTree(CONFIG, SimulationClock())
    with pytest.raises(TypeError):
        tree.checkpoint()


def test_simulated_tree_close_is_noop():
    tree = MovingObjectTree(CONFIG, SimulationClock())
    tree.close()  # must not raise
    assert not isinstance(tree.disk, FilePageStore)


def test_bulk_loaded_durable_tree_survives_reopen(tmp_path):
    rng = random.Random(9)
    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(str(tmp_path / "t"), CONFIG, clock)
    entries = [(random_point(rng, 0.0), 1000 + i) for i in range(150)]
    tree.bulk_load(entries)
    queries = probe_queries(0.0)
    want = [sorted(tree.query(q)) for q in queries]
    tree.close()
    reopened = MovingObjectTree.open_from(str(tmp_path / "t"), CONFIG)
    assert [sorted(reopened.query(q)) for q in queries] == want
    reopened.close()


# -- forest -------------------------------------------------------------------

FOREST_CONFIG = ForestConfig(tree=CONFIG, partitions=3)


def test_forest_close_reopen_answers_identically(tmp_path):
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest.create_durable(
        str(tmp_path / "f"), FOREST_CONFIG, clock
    )
    populate(forest, clock)
    queries = probe_queries(clock.time)
    want = [sorted(forest.query(q)) for q in queries]
    want_audit = forest.audit()
    forest.close()

    clock2 = SimulationClock()
    reopened = PartitionedMovingObjectForest.open_from(
        str(tmp_path / "f"), FOREST_CONFIG, clock2
    )
    assert clock2.time == pytest.approx(clock.time)
    assert [sorted(reopened.query(q)) for q in queries] == want
    audit = reopened.audit()
    assert (audit.nodes, audit.leaf_entries) == (
        want_audit.nodes, want_audit.leaf_entries
    )
    reopened.close()


def test_forest_manifest_restores_refitted_partitioner(tmp_path):
    rng = random.Random(4)
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest.create_durable(
        str(tmp_path / "f"), FOREST_CONFIG, clock
    )
    entries = [(random_point(rng, 0.0), 2000 + i) for i in range(120)]
    forest.bulk_load(entries)  # refits the speed boundaries
    boundaries = forest.partitioner.boundaries
    forest.close()

    reopened = PartitionedMovingObjectForest.open_from(
        str(tmp_path / "f"), FOREST_CONFIG
    )
    assert reopened.partitioner.boundaries == boundaries
    reopened.close()


def test_forest_open_rejects_partition_mismatch(tmp_path):
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest.create_durable(
        str(tmp_path / "f"), FOREST_CONFIG, clock
    )
    forest.close()
    with pytest.raises(ValueError):
        PartitionedMovingObjectForest.open_from(
            str(tmp_path / "f"), FOREST_CONFIG.with_(partitions=5)
        )


def test_forest_persist_to_from_simulated(tmp_path):
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest(FOREST_CONFIG, clock)
    populate(forest, clock)
    reports = forest.persist_to(str(tmp_path / "snap"))
    assert len(reports) == FOREST_CONFIG.partitions
    queries = probe_queries(clock.time)
    want = [sorted(forest.query(q)) for q in queries]
    reopened = PartitionedMovingObjectForest.open_from(
        str(tmp_path / "snap"), FOREST_CONFIG
    )
    assert [sorted(reopened.query(q)) for q in queries] == want
    reopened.close()


# -- idempotent shutdown and failed-commit safety -----------------------------


def test_tree_close_and_checkpoint_idempotent(tmp_path):
    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(str(tmp_path / "t"), CONFIG, clock)
    rng = random.Random(0)
    for oid in range(4):
        tree.insert(oid, random_point(rng, 0.0))
    tree.checkpoint()
    tree.close()
    tree.close()       # a second close is a no-op
    tree.checkpoint()  # and so is a checkpoint on the closed store
    assert tree.disk.closed


def test_tree_close_safe_after_failed_commit(tmp_path):
    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(str(tmp_path / "t"), CONFIG, clock)
    rng = random.Random(2)
    for oid in range(5):
        tree.insert(oid, random_point(rng, 0.0))
    # The next insert's group commit fails transiently: the in-memory
    # mutation is complete, the encoded batch stays pending.
    tree.disk.arm_injector(FaultInjector(transient_writes={1}))
    with pytest.raises(TransientIOError):
        tree.insert(5, random_point(rng, 0.0))
    tree.close()  # re-drives the pending commit, then closes
    tree.close()  # idempotent after the failure path too
    reopened = MovingObjectTree.open_from(
        str(tmp_path / "t"), CONFIG, SimulationClock()
    )
    answer = set(
        reopened.query(TimesliceQuery(Rect((0, 0), (100, 100)), 0.0))
    )
    assert answer == set(range(6)), "the pending batch must be durable"
    reopened.close()


def test_forest_close_and_checkpoint_idempotent(tmp_path):
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest.create_durable(
        str(tmp_path / "f"),
        ForestConfig(tree=CONFIG, partitions=2),
        clock,
    )
    rng = random.Random(1)
    for oid in range(8):
        forest.insert(oid, random_point(rng, 0.0))
    forest.checkpoint()
    forest.close()
    forest.close()       # every member close is a no-op the second time
    forest.checkpoint()  # checkpoints on closed members are no-ops
    assert all(tree.disk.closed for tree in forest.trees)


def test_forest_close_safe_after_failed_member_commit(tmp_path):
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest.create_durable(
        str(tmp_path / "f"),
        ForestConfig(tree=CONFIG, partitions=2),
        clock,
    )
    rng = random.Random(3)
    points = {oid: random_point(rng, 0.0) for oid in range(8)}
    inserted = []
    for oid, point in points.items():
        forest.insert(oid, point)
        inserted.append(oid)
    # Fault one member's next commit; whichever insert routes there
    # fails transiently but stays pending inside that member's store.
    forest.trees[0].disk.arm_injector(FaultInjector(transient_writes={1}))
    failed = None
    for oid in range(8, 16):
        point = random_point(rng, 0.0)
        points[oid] = point
        try:
            forest.insert(oid, point)
        except TransientIOError:
            failed = oid
            break
        inserted.append(oid)
    assert failed is not None, "some insert must route to the faulted member"
    forest.close()  # commits the pending batch on the faulted member
    forest.close()
    reopened = PartitionedMovingObjectForest.open_from(
        str(tmp_path / "f"), ForestConfig(tree=CONFIG, partitions=2)
    )
    answer = set(
        reopened.query(TimesliceQuery(Rect((0, 0), (100, 100)), 0.0))
    )
    assert answer == set(inserted) | {failed}
    reopened.close()
