"""Property tests for partitioner routing (hypothesis).

Sharding correctness rests on two routing invariants:

* **Totality** — every well-formed report maps to exactly one bucket
  in ``range(partitions)``, deterministically, for every partitioner
  kind.  A report that routed nowhere (or differently on delete than
  on insert) would silently corrupt a shard.
* **Scatter soundness** — a query must be scattered to every bucket
  that can hold a matching entry.  For the grid partitioner this holds
  whenever live entries obey the configured ``reach`` drift bound.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import GridPartitioner, make_partitioner
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.geometry.intersection import region_matches_point

SPACE = 100.0
MAX_SPEED = 3.0
HORIZON = 20.0
KINDS = ["speed", "direction", "grid"]

finite = st.floats(allow_nan=False, allow_infinity=False)
coordinates = st.floats(
    min_value=-10.0 * SPACE, max_value=10.0 * SPACE,
    allow_nan=False, allow_infinity=False,
)
velocities = st.floats(
    min_value=-MAX_SPEED, max_value=MAX_SPEED,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def wild_points(draw):
    """Reports with unconstrained (finite) coordinates and velocities."""
    pos = (draw(finite), draw(finite))
    vel = (draw(finite), draw(finite))
    t_ref = draw(finite)
    delta = draw(
        st.one_of(
            st.just(math.inf),
            st.floats(min_value=0.0, allow_nan=False, allow_infinity=False),
        )
    )
    return MovingPoint(pos, vel, t_ref, t_ref + delta)


def partitioner_for(kind, partitions):
    return make_partitioner(
        kind, partitions,
        max_speed=MAX_SPEED, space=SPACE, reach=MAX_SPEED * HORIZON,
    )


@given(
    kind=st.sampled_from(KINDS),
    # Two is every kind's floor: direction reserves a slow bucket.
    partitions=st.integers(min_value=2, max_value=9),
    point=wild_points(),
)
def test_every_report_routes_to_exactly_one_bucket(kind, partitions, point):
    partitioner = partitioner_for(kind, partitions)
    bucket = partitioner.partition_of(point)
    assert 0 <= bucket < partitioner.partitions
    # Deterministic: deletes must reach the bucket their insert chose.
    assert partitioner.partition_of(point) == bucket
    groups = partitioner.split([(point, 7)])
    assert [len(g) for g in groups] == [
        1 if i == bucket else 0 for i in range(partitioner.partitions)
    ]


@given(
    kind=st.sampled_from(KINDS),
    partitions=st.integers(min_value=2, max_value=9),
    xs=st.tuples(coordinates, coordinates),
    ys=st.tuples(coordinates, coordinates),
    t1=st.floats(min_value=0.0, max_value=HORIZON, allow_nan=False),
    dt=st.floats(min_value=0.0, max_value=HORIZON, allow_nan=False),
)
def test_query_scatter_targets_are_valid_buckets(
    kind, partitions, xs, ys, t1, dt
):
    partitioner = partitioner_for(kind, partitions)
    rect = Rect(
        (min(xs), min(ys)), (max(xs), max(ys))
    )
    region = WindowQuery(rect, t1, t1 + dt).region()
    targets = partitioner.query_partitions(region)
    assert targets
    assert len(set(targets)) == len(targets)
    assert all(0 <= t < partitioner.partitions for t in targets)


@st.composite
def bounded_queries(draw):
    """Queries inside the horizon the grid's reach is budgeted for."""
    t1 = draw(st.floats(min_value=0.0, max_value=HORIZON, allow_nan=False))
    t2 = t1 + draw(
        st.floats(min_value=0.0, max_value=HORIZON - t1, allow_nan=False)
    )
    xs = sorted(draw(st.tuples(coordinates, coordinates)))
    ys = sorted(draw(st.tuples(coordinates, coordinates)))
    rect = Rect((xs[0], ys[0]), (xs[1], ys[1]))
    kind = draw(st.sampled_from(["timeslice", "window", "moving"]))
    if kind == "timeslice":
        return TimesliceQuery(rect, t2)
    if kind == "window":
        return WindowQuery(rect, t1, t2)
    dx = draw(st.floats(min_value=-SPACE, max_value=SPACE, allow_nan=False))
    dy = draw(st.floats(min_value=-SPACE, max_value=SPACE, allow_nan=False))
    rect2 = Rect((xs[0] + dx, ys[0] + dy), (xs[1] + dx, ys[1] + dy))
    return MovingQuery(rect, rect2, t1, t2)


@given(
    partitions=st.integers(min_value=1, max_value=9),
    pos=st.tuples(coordinates, coordinates),
    vel=st.tuples(velocities, velocities),
    query=bounded_queries(),
    fitted=st.booleans(),
    sample=st.lists(
        st.tuples(coordinates, coordinates), min_size=1, max_size=12
    ),
)
def test_grid_scatter_is_sound_under_the_reach_bound(
    partitions, pos, vel, query, fitted, sample
):
    """A matching report's bucket is always among the scatter targets.

    Reports reference time 0 with per-axis speed at most ``MAX_SPEED``
    and queries end by ``HORIZON``, so per-axis drift from the routing
    (reference) position never exceeds ``reach = MAX_SPEED * HORIZON``
    — exactly the soundness precondition of grid query pruning, for
    uniform and fitted (quantile-cut) grids alike.
    """
    if fitted:
        grid = GridPartitioner.for_partitions(partitions, space=SPACE)
        partitioner = GridPartitioner.fitted(
            sample, grid.cells_x, grid.cells_y,
            space=SPACE, reach=MAX_SPEED * HORIZON,
        )
    else:
        partitioner = partitioner_for("grid", partitions)
    point = MovingPoint(pos, vel, 0.0, math.inf)
    region = query.region()
    if region_matches_point(region, point):
        assert partitioner.partition_of(point) in (
            partitioner.query_partitions(region)
        )


@given(
    partitions=st.integers(min_value=2, max_value=9),
    sample=st.lists(
        st.tuples(coordinates, coordinates), min_size=1, max_size=30
    ),
    point=wild_points(),
)
def test_fitted_grid_routing_is_total_too(partitions, sample, point):
    grid = GridPartitioner.for_partitions(partitions, space=SPACE)
    partitioner = GridPartitioner.fitted(
        sample, grid.cells_x, grid.cells_y, space=SPACE
    )
    bucket = partitioner.partition_of(point)
    assert 0 <= bucket < partitioner.partitions
    assert partitioner.partition_of(point) == bucket
