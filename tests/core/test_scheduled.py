"""Tests for the scheduled-deletion architecture (Section 3)."""

import math

import pytest

from repro.core.clock import SimulationClock
from repro.core.presets import rexp_config, tpr_config
from repro.core.scheduled import ScheduledDeletionIndex
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect


def make_index(config=None):
    clock = SimulationClock()
    base = (config if config is not None else rexp_config()).with_(
        page_size=512, buffer_pages=8, default_ui=10.0
    )
    tree = MovingObjectTree(base, clock)
    return ScheduledDeletionIndex(tree, queue_buffer_pages=8), clock


def point(x, y, t_ref=0.0, t_exp=10.0):
    return MovingPoint((x, y), (0.0, 0.0), t_ref, t_exp)


def test_insert_schedules_event():
    index, clock = make_index()
    index.insert(1, point(5.0, 5.0, t_exp=10.0))
    assert index.pending_events == 1


def test_infinite_expiration_not_scheduled():
    index, clock = make_index()
    index.insert(1, MovingPoint((1.0, 1.0), (0.0, 0.0), 0.0, math.inf))
    assert index.pending_events == 0


def test_due_deletion_fires_on_time_advance():
    index, clock = make_index()
    index.insert(1, point(5.0, 5.0, t_exp=10.0))
    index.advance_time(9.0)
    assert index.scheduled_deletions == 0
    index.advance_time(10.5)
    assert index.scheduled_deletions == 1
    assert index.pending_events == 0
    assert index.tree.audit().leaf_entries == 0


def test_deletions_fire_at_exact_expiration_instant():
    """The clock must land exactly on t_exp so the entry is still live
    and still inside its bounding rectangles."""
    index, clock = make_index()
    index.insert(1, point(5.0, 5.0, t_exp=10.0))
    index.insert(2, point(7.0, 7.0, t_exp=12.0))
    index.advance_time(100.0)
    assert index.scheduled_deletions == 2
    assert clock.time == 100.0
    assert index.tree.audit().leaf_entries == 0


def test_update_reschedules_event():
    index, clock = make_index()
    old = point(5.0, 5.0, t_exp=10.0)
    index.insert(1, old)
    clock.advance_to(1.0)
    new = point(6.0, 6.0, t_ref=1.0, t_exp=20.0)
    assert index.update(1, old, new)
    assert index.pending_events == 1
    index.advance_time(15.0)
    # The old event is gone; the object still lives until 20.
    assert index.scheduled_deletions == 0
    assert index.query(
        TimesliceQuery(Rect((5.5, 5.5), (6.5, 6.5)), 16.0)
    ) == [1]


def test_delete_removes_pending_event():
    index, clock = make_index()
    p = point(5.0, 5.0, t_exp=10.0)
    index.insert(1, p)
    assert index.delete(1, p)
    assert index.pending_events == 0
    index.advance_time(50.0)
    assert index.scheduled_deletions == 0


def test_works_for_tpr_tree_too():
    """'TPR-tree with scheduled deletions' of Section 5.4: the tree
    itself has no expiration support, the queue does the cleanup."""
    index, clock = make_index(config=tpr_config())
    index.insert(1, point(5.0, 5.0, t_exp=10.0))
    q = TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 50.0)
    assert index.query(q) == [1]  # infinite-line semantics before cleanup
    index.advance_time(11.0)
    assert index.scheduled_deletions == 1
    assert index.query(
        TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 50.0)
    ) == []


def test_queue_io_accounted_separately():
    index, clock = make_index()
    for oid in range(100):
        index.insert(oid, point(float(oid), float(oid), t_exp=5.0 + oid))
    assert index.queue.stats.total > 0
    assert index.queue_page_count > 0
    assert index.page_count > 0


def test_scheduled_deletion_hook_reports_tree_io():
    index, clock = make_index()
    deltas = []
    index.on_scheduled_deletion(lambda d: deltas.append(d.total))
    index.insert(1, point(5.0, 5.0, t_exp=10.0))
    index.advance_time(20.0)
    assert len(deltas) == 1
    assert deltas[0] >= 0


def test_missed_scheduled_deletion_not_counted_as_performed():
    """Regression: a due event whose entry is already gone (deleted
    behind the queue's back or lazily purged) used to increment
    ``scheduled_deletions`` and fire the I/O hook anyway, skewing
    Section 5.4's per-deletion accounting."""
    index, clock = make_index()
    deltas = []
    index.on_scheduled_deletion(lambda d: deltas.append(d.total))
    p = point(5.0, 5.0, t_exp=10.0)
    index.insert(1, p)
    # Remove the entry directly from the tree, leaving the event queued.
    assert index.tree.delete(1, p)
    index.advance_time(20.0)
    assert index.scheduled_deletions == 0
    assert index.missed_deletions == 1
    assert deltas == []  # the hook only charges real deletions


def test_fired_and_missed_events_counted_separately():
    index, clock = make_index()
    live = point(5.0, 5.0, t_exp=10.0)
    gone = point(50.0, 50.0, t_exp=12.0)
    index.insert(1, live)
    index.insert(2, gone)
    assert index.tree.delete(2, gone)
    index.advance_time(20.0)
    assert index.scheduled_deletions == 1
    assert index.missed_deletions == 1
    assert index.pending_events == 0
