"""Behavioural tests for the R^exp-tree / moving-object tree."""

import math
import random

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.presets import bounding_config, rexp_config, tpr_config
from repro.core.tree import MovingObjectTree
from repro.geometry.bounding import BoundingKind
from repro.geometry.intersection import region_matches_point
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect


def make_tree(config=None, **overrides):
    clock = SimulationClock()
    base = config if config is not None else rexp_config()
    defaults = dict(page_size=512, buffer_pages=8, default_ui=10.0)
    defaults.update(overrides)
    return MovingObjectTree(base.with_(**defaults), clock), clock


def make_point(x, y, vx=0.0, vy=0.0, t_ref=0.0, t_exp=math.inf):
    return MovingPoint((x, y), (vx, vy), t_ref, t_exp)


def random_point(rng, t, life=20.0):
    return MovingPoint(
        (rng.uniform(0, 100), rng.uniform(0, 100)),
        (rng.uniform(-2, 2), rng.uniform(-2, 2)),
        t,
        t + rng.uniform(0.5, life),
    )


# -- basic behaviour -------------------------------------------------------------


def test_timeslice_query_finds_predicted_position():
    tree, clock = make_tree()
    tree.insert(1, make_point(0.0, 0.0, vx=1.0, vy=1.0, t_exp=100.0))
    hit = TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 5.0)
    miss = TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 8.0)
    assert tree.query(hit) == [1]
    assert tree.query(miss) == []


def test_window_and_moving_queries():
    tree, clock = make_tree()
    tree.insert(1, make_point(0.0, 5.0, vx=1.0, t_exp=100.0))
    window = WindowQuery(Rect((9.0, 4.0), (10.0, 6.0)), 0.0, 20.0)
    assert tree.query(window) == [1]
    moving = MovingQuery(
        Rect((-1.0, 4.0), (1.0, 6.0)), Rect((19.0, 4.0), (21.0, 6.0)),
        0.0, 20.0,
    )
    assert tree.query(moving) == [1]


def test_expired_object_not_reported():
    """The paper's core semantics: queries after t_exp ignore the entry."""
    tree, clock = make_tree()
    tree.insert(1, make_point(5.0, 5.0, t_exp=10.0))
    q_before = TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 9.0)
    q_after = TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 11.0)
    assert tree.query(q_before) == [1]
    assert tree.query(q_after) == []


def test_query_window_clipped_at_expiry():
    tree, clock = make_tree()
    tree.insert(1, make_point(5.0, 5.0, t_exp=10.0))
    q = WindowQuery(Rect((4.0, 4.0), (6.0, 6.0)), 8.0, 50.0)
    assert tree.query(q) == [1]  # matched within [8, 10]


def test_delete_live_entry():
    tree, clock = make_tree()
    p = make_point(5.0, 5.0, t_exp=10.0)
    tree.insert(1, p)
    assert tree.delete(1, p)
    assert tree.query(TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 1.0)) == []


def test_delete_of_expired_entry_fails():
    """Section 4.3: the deletion search does not see expired entries."""
    tree, clock = make_tree()
    p = make_point(5.0, 5.0, t_exp=10.0)
    tree.insert(1, p)
    clock.advance_to(11.0)
    assert not tree.delete(1, p)


def test_delete_at_exact_expiration_instant_succeeds():
    """Scheduled deletions fire at t_exp and must find the entry."""
    tree, clock = make_tree()
    p = make_point(5.0, 5.0, t_exp=10.0)
    tree.insert(1, p)
    clock.advance_to(10.0)
    assert tree.delete(1, p)


def test_delete_unknown_oid_fails():
    tree, clock = make_tree()
    tree.insert(1, make_point(5.0, 5.0, t_exp=10.0))
    assert not tree.delete(2, make_point(5.0, 5.0, t_exp=10.0))


def test_update_replaces_report():
    tree, clock = make_tree()
    old = make_point(5.0, 5.0, t_exp=10.0)
    tree.insert(1, old)
    clock.advance_to(1.0)
    new = make_point(50.0, 50.0, t_ref=1.0, t_exp=11.0)
    assert tree.update(1, old, new)
    assert tree.query(TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 2.0)) == []
    assert tree.query(TimesliceQuery(Rect((49.0, 49.0), (51.0, 51.0)), 2.0)) == [1]


def test_wrong_dimensionality_rejected():
    tree, clock = make_tree()
    with pytest.raises(ValueError):
        tree.insert(1, MovingPoint((0.0,), (0.0,), 0.0, 1.0))


# -- structure under churn ----------------------------------------------------------


def test_growth_and_invariants_under_inserts():
    tree, clock = make_tree()
    rng = random.Random(0)
    for oid in range(400):
        clock.advance_to(oid * 0.01)
        tree.insert(oid, random_point(rng, clock.time, life=1000.0))
    assert tree.height >= 3
    tree.check_invariants()


def test_query_parity_with_oracle_under_churn():
    tree, clock = make_tree()
    rng = random.Random(1)
    live = {}
    t = 0.0
    for step in range(1200):
        t += 0.02
        clock.advance_to(t)
        roll = rng.random()
        if live and roll < 0.3:
            oid = rng.choice(list(live))
            old = live[oid]
            new = random_point(rng, t)
            tree.update(oid, old, new)
            live[oid] = new
        elif live and roll < 0.4:
            oid = rng.choice(list(live))
            tree.delete(oid, live.pop(oid))
        else:
            point = random_point(rng, t)
            tree.insert(step, point)
            live[step] = point
    tree.check_invariants()
    for _ in range(60):
        x, y = rng.uniform(0, 90), rng.uniform(0, 90)
        q = WindowQuery(Rect((x, y), (x + 10, y + 10)), t, t + rng.uniform(0, 10))
        got = sorted(tree.query(q))
        want = sorted(
            oid for oid, p in live.items()
            if region_matches_point(q.region(), p)
        )
        assert got == want


def test_lazy_purge_removes_expired_entries():
    """Section 5.4: ongoing updates purge almost all expired entries."""
    tree, clock = make_tree()
    rng = random.Random(2)
    t = 0.0
    for oid in range(300):
        t += 0.05
        clock.advance_to(t)
        tree.insert(oid, random_point(rng, t, life=3.0))
    # Everything inserted long ago has expired; keep inserting to purge.
    t += 50.0
    for oid in range(300, 500):
        t += 0.05
        clock.advance_to(t)
        tree.insert(oid, random_point(rng, t, life=3.0))
    audit = tree.audit()
    assert audit.expired_fraction < 0.35
    tree.check_invariants()


def test_mass_expiry_then_insert_shrinks_tree():
    """The Figure 8 scenario: one insertion purges expired subtrees."""
    tree, clock = make_tree()
    rng = random.Random(3)
    for oid in range(300):
        tree.insert(oid, random_point(rng, 0.0, life=5.0))
    pages_before = tree.page_count
    clock.advance_to(100.0)  # everything expires
    for oid in range(300, 340):
        tree.insert(oid, random_point(rng, 100.0, life=5.0))
    assert tree.page_count < pages_before
    audit = tree.audit()
    assert audit.leaf_entries <= 340 - 300 + 60  # mostly fresh entries
    tree.check_invariants()


def test_tree_never_purges_when_lazy_expiry_off():
    tree, clock = make_tree(config=tpr_config())
    rng = random.Random(4)
    for oid in range(100):
        tree.insert(oid, random_point(rng, 0.0, life=1.0))
    clock.advance_to(50.0)
    for oid in range(100, 140):
        tree.insert(oid, random_point(rng, 50.0, life=1.0))
    assert tree.audit().leaf_entries == 140


def test_tpr_preset_strips_expiration_times():
    tree, clock = make_tree(config=tpr_config())
    tree.insert(1, make_point(5.0, 5.0, t_exp=10.0))
    audit = tree.audit()
    assert audit.leaf_entries == 1
    assert audit.expired_leaf_entries == 0
    clock.advance_to(100.0)
    # Still reported: the TPR-tree treats trajectories as infinite.
    assert tree.query(
        TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 100.0)
    ) == [1]


def test_static_bounding_tree_works_with_finite_expirations():
    config = bounding_config(BoundingKind.STATIC)
    tree, clock = make_tree(config=config)
    rng = random.Random(5)
    for oid in range(200):
        clock.advance_to(oid * 0.01)
        tree.insert(oid, random_point(rng, clock.time, life=10.0))
    tree.check_invariants()
    assert tree.leaf_entry_count > 0


@pytest.mark.parametrize("kind", list(BoundingKind))
def test_all_bounding_kinds_pass_invariants_under_churn(kind):
    config = bounding_config(kind)
    tree, clock = make_tree(config=config)
    rng = random.Random(hash(kind) & 0xFFFF)
    live = {}
    t = 0.0
    for step in range(400):
        t += 0.03
        clock.advance_to(t)
        if live and rng.random() < 0.4:
            oid = rng.choice(list(live))
            old = live[oid]
            new = random_point(rng, t)
            tree.update(oid, old, new)
            live[oid] = new
        else:
            point = random_point(rng, t)
            tree.insert(step, point)
            live[step] = point
    tree.check_invariants()


def test_expired_subtree_deallocated_when_br_expiration_stored():
    config = rexp_config(store_br_expiration=True)
    tree, clock = make_tree(config=config)
    rng = random.Random(6)
    for oid in range(300):
        tree.insert(oid, random_point(rng, 0.0, life=2.0))
    pages = tree.page_count
    clock.advance_to(1000.0)
    tree.insert(9999, random_point(rng, 1000.0, life=2.0))
    assert tree.page_count < pages
    tree.check_invariants()


def test_root_shrinks_back_to_single_leaf():
    tree, clock = make_tree()
    rng = random.Random(7)
    points = {oid: random_point(rng, 0.0, life=1000.0) for oid in range(300)}
    for oid, p in points.items():
        tree.insert(oid, p)
    assert tree.height >= 2
    for oid, p in points.items():
        assert tree.delete(oid, p)
    assert tree.height == 1
    assert tree.leaf_entry_count == 0
    tree.check_invariants()


def test_page_count_tracks_tree_size():
    tree, clock = make_tree()
    rng = random.Random(8)
    assert tree.page_count == 1
    for oid in range(250):
        tree.insert(oid, random_point(rng, 0.0, life=1000.0))
    assert tree.page_count > 5


def test_audit_counts_expired_entries():
    tree, clock = make_tree()
    tree.insert(1, make_point(1.0, 1.0, t_exp=5.0))
    tree.insert(2, make_point(2.0, 2.0, t_exp=50.0))
    clock.advance_to(10.0)
    audit = tree.audit()
    assert audit.leaf_entries == 2
    assert audit.expired_leaf_entries == 1
    assert audit.expired_fraction == pytest.approx(0.5)


def test_duplicate_oid_after_failed_delete_is_harmless():
    """An object re-appearing after its old report expired may leave a
    stale duplicate; queries never return it."""
    tree, clock = make_tree()
    old = make_point(5.0, 5.0, t_exp=1.0)
    tree.insert(1, old)
    clock.advance_to(2.0)
    assert not tree.delete(1, old)  # expired: delete fails, per the paper
    new = make_point(5.0, 5.0, t_ref=2.0, t_exp=10.0)
    tree.insert(1, new)
    answer = tree.query(TimesliceQuery(Rect((4.0, 4.0), (6.0, 6.0)), 3.0))
    assert answer == [1]
