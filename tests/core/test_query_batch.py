"""Property tests: ``query_batch`` ≡ K sequential ``query`` calls.

The batched traversal shares one stack walk across K queries but must
stay *bit-identical* to running each query alone — same oids in the
same order — on every index shape (single tree, partitioned forest)
and on both kernel paths (numpy masks and the scalar fallback).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimulationClock
from repro.core.forest import PartitionedMovingObjectForest
from repro.core.presets import forest_config, rexp_config
from repro.core.tree import MovingObjectTree
from repro.geometry import kernels
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect

SIZING = dict(page_size=512, buffer_pages=8, default_ui=10.0)
SPACE = 100.0


def _random_point(rng, t):
    return MovingPoint(
        (rng.uniform(0, SPACE), rng.uniform(0, SPACE)),
        (rng.uniform(-3, 3), rng.uniform(-3, 3)),
        t, t + rng.uniform(1, 40),
    )


def _random_query(rng, t):
    lo = (rng.uniform(0, SPACE - 10), rng.uniform(0, SPACE - 10))
    hi = (lo[0] + rng.uniform(1, 25), lo[1] + rng.uniform(1, 25))
    rect = Rect(lo, hi)
    kind = rng.randrange(3)
    if kind == 0:
        return TimesliceQuery(rect, t + rng.uniform(0, 10))
    t1 = t + rng.uniform(0, 5)
    if kind == 1:
        return WindowQuery(rect, t1, t1 + rng.uniform(0, 5))
    lo2 = (rng.uniform(0, SPACE - 10), rng.uniform(0, SPACE - 10))
    rect2 = Rect(lo2, (lo2[0] + rng.uniform(1, 25), lo2[1] + rng.uniform(1, 25)))
    return MovingQuery(rect, rect2, t1, t1 + rng.uniform(0, 5))


def _populated_tree(rng, population):
    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(**SIZING), clock)
    t = 0.0
    for oid in range(population):
        t += 0.01
        clock.advance_to(t)
        tree.insert(oid, _random_point(rng, t))
    return tree, t


@settings(deadline=None)
@given(seed=st.integers(0, 2 ** 16), batch=st.integers(0, 40))
def test_tree_batch_matches_sequential(seed, batch):
    rng = random.Random(seed)
    tree, t = _populated_tree(rng, 150)
    queries = [_random_query(rng, t) for _ in range(batch)]
    assert tree.query_batch(queries) == [tree.query(q) for q in queries]


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 2 ** 16))
def test_tree_batch_matches_sequential_scalar_path(seed):
    rng = random.Random(seed)
    tree, t = _populated_tree(rng, 150)
    queries = [_random_query(rng, t) for _ in range(25)]
    want = [tree.query(q) for q in queries]
    saved = kernels.np
    kernels.np = None
    try:
        got = tree.query_batch(queries)
    finally:
        kernels.np = saved
    assert got == want


@settings(deadline=None, max_examples=10)
@given(
    seed=st.integers(0, 2 ** 16),
    partitioner=st.sampled_from(["speed", "grid"]),
)
def test_forest_batch_matches_sequential(seed, partitioner):
    rng = random.Random(seed)
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest(
        forest_config(partitions=4, partitioner=partitioner, **SIZING), clock
    )
    t = 0.0
    for oid in range(200):
        t += 0.01
        clock.advance_to(t)
        forest.insert(oid, _random_point(rng, t))
    queries = [_random_query(rng, t) for _ in range(30)]
    assert forest.query_batch(queries) == [forest.query(q) for q in queries]


def test_forest_insert_batch_matches_sequential_inserts():
    rng = random.Random(7)
    reports = [(oid, _random_point(rng, 0.0)) for oid in range(300)]
    config = forest_config(partitions=4, partitioner="grid", **SIZING)
    sequential = PartitionedMovingObjectForest(config, SimulationClock())
    for oid, point in reports:
        sequential.insert(oid, point)
    grouped = PartitionedMovingObjectForest(config, SimulationClock())
    grouped.insert_batch(reports)
    queries = [_random_query(rng, 0.0) for _ in range(40)]
    assert [grouped.query(q) for q in queries] == \
        [sequential.query(q) for q in queries]


def test_empty_and_single_query_batches():
    rng = random.Random(3)
    tree, t = _populated_tree(rng, 80)
    assert tree.query_batch([]) == []
    query = _random_query(rng, t)
    assert tree.query_batch([query]) == [tree.query(query)]


def test_batch_counts_queries_in_metrics():
    from repro.obs import MetricsRegistry

    rng = random.Random(5)
    tree, t = _populated_tree(rng, 80)
    registry = MetricsRegistry()
    tree.enable_observability(registry)
    tree.query_batch([_random_query(rng, t) for _ in range(6)])
    assert registry.counter("tree.queries").value == 6
