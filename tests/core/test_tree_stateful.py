"""Stateful property testing of the R^exp-tree against an oracle model.

Hypothesis drives random interleavings of inserts, updates, deletes,
clock advances and queries; after every query the tree's answer must
match a brute-force evaluation over the model of live reports, and the
structural invariants must hold at the end of every run.
"""

import math
import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.clock import SimulationClock
from repro.core.presets import rexp_config
from repro.core.tree import MovingObjectTree
from repro.geometry.intersection import region_matches_point
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect

coords = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
vels = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
lives = st.floats(min_value=0.1, max_value=15.0, allow_nan=False)
steps = st.floats(min_value=0.0, max_value=3.0, allow_nan=False)


class RexpTreeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.clock = SimulationClock()
        self.tree = MovingObjectTree(
            rexp_config(page_size=512, buffer_pages=4, default_ui=5.0),
            self.clock,
        )
        self.model = {}
        self.next_oid = 0

    def _make_point(self, x, y, vx, vy, life):
        t = self.clock.time
        return MovingPoint((x, y), (vx, vy), t, t + life)

    @rule(x=coords, y=coords, vx=vels, vy=vels, life=lives)
    def insert(self, x, y, vx, vy, life):
        point = self._make_point(x, y, vx, vy, life)
        oid = self.next_oid
        self.next_oid += 1
        self.tree.insert(oid, point)
        self.model[oid] = point

    @rule(x=coords, y=coords, vx=vels, vy=vels, life=lives, pick=st.randoms())
    def update(self, x, y, vx, vy, life, pick):
        if not self.model:
            return
        oid = pick.choice(sorted(self.model))
        new = self._make_point(x, y, vx, vy, life)
        self.tree.update(oid, self.model[oid], new)
        self.model[oid] = new

    @rule(pick=st.randoms())
    def delete(self, pick):
        if not self.model:
            return
        oid = pick.choice(sorted(self.model))
        point = self.model.pop(oid)
        removed = self.tree.delete(oid, point)
        # Deletion must succeed exactly when the entry is still live.
        if not point.is_expired(self.clock.time):
            assert removed, f"live entry {oid} not found by delete"

    @rule(dt=steps)
    def advance(self, dt):
        self.clock.advance_to(self.clock.time + dt)

    @rule(x=coords, y=coords, side=st.floats(1.0, 20.0), ahead=steps,
          span=steps)
    def query(self, x, y, side, ahead, span):
        t1 = self.clock.time + ahead
        q = WindowQuery(Rect((x, y), (x + side, y + side)), t1, t1 + span)
        got = sorted(self.tree.query(q))
        want = sorted(
            oid for oid, p in self.model.items()
            if region_matches_point(q.region(), p)
        )
        assert got == want, f"query mismatch: {got} != {want}"

    @rule(x=coords, y=coords, side=st.floats(1.0, 20.0), ahead=steps)
    def timeslice(self, x, y, side, ahead):
        t = self.clock.time + ahead
        q = TimesliceQuery(Rect((x, y), (x + side, y + side)), t)
        got = set(self.tree.query(q))
        want = {
            oid for oid, p in self.model.items()
            if region_matches_point(q.region(), p)
        }
        assert got == want

    @invariant()
    def leaf_count_never_negative(self):
        if hasattr(self, "tree"):
            assert self.tree.leaf_entry_count >= 0

    def teardown(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()


TestRexpTreeStateful = RexpTreeMachine.TestCase
TestRexpTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
