"""Tests for the velocity-partitioned forest of R^exp-trees."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clock import SimulationClock
from repro.core.forest import ForestConfig, PartitionedMovingObjectForest
from repro.core.partition import SpeedPartitioner
from repro.core.presets import forest_config, rexp_config
from repro.core.scheduled import ScheduledDeletionIndex
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect

SIZING = dict(page_size=512, buffer_pages=8, default_ui=10.0)


def make_forest(partitions=4, partitioner="speed", clock=None, **overrides):
    config = forest_config(
        partitions=partitions, partitioner=partitioner, **SIZING, **overrides
    )
    return PartitionedMovingObjectForest(config, clock or SimulationClock())


def velocity_point(rng, clock, space=100.0, max_speed=3.0, max_life=30.0):
    t = clock.time
    speed = rng.uniform(0.0, max_speed)
    angle = rng.uniform(0.0, 2.0 * math.pi)
    return MovingPoint(
        (rng.uniform(0.0, space), rng.uniform(0.0, space)),
        (speed * math.cos(angle), speed * math.sin(angle)),
        t,
        t + rng.uniform(1.0, max_life),
    )


# -- construction and configuration ------------------------------------------


def test_forest_config_splits_buffer_budget():
    config = ForestConfig(tree=rexp_config(buffer_pages=50), partitions=4)
    # 50 = 13 + 13 + 12 + 12: the first members absorb the remainder.
    shares = [
        config.member_tree_config(i).buffer_pages
        for i in range(config.partitions)
    ]
    assert shares == [13, 13, 12, 12]
    whole = config.with_(split_buffer=False)
    assert whole.member_tree_config().buffer_pages == 50


def test_forest_buffer_split_preserves_total_budget():
    # Regression: the old floor-division split dropped the remainder
    # (10 pages over 4 members summed to 8, contradicting the "forest
    # total matches a single tree" contract).
    config = ForestConfig(tree=rexp_config(buffer_pages=10), partitions=4)
    shares = [
        config.member_tree_config(i).buffer_pages
        for i in range(config.partitions)
    ]
    assert sum(shares) == 10
    assert shares == [3, 3, 2, 2]
    forest = PartitionedMovingObjectForest(config)
    assert sum(tree.buffer.capacity for tree in forest.trees) == 10
    # More members than pages: the one-page floor wins over exactness.
    starved = ForestConfig(tree=rexp_config(buffer_pages=2), partitions=4)
    assert [
        starved.member_tree_config(i).buffer_pages for i in range(4)
    ] == [1, 1, 1, 1]


def test_forest_config_passthroughs():
    config = forest_config(partitions=2, page_size=1024)
    assert config.page_size == 1024
    assert config.dims == 2


def test_forest_config_rejects_zero_partitions():
    with pytest.raises(ValueError):
        ForestConfig(partitions=0)


def test_forest_preset_routes_overrides():
    config = forest_config(
        partitions=2, split_buffer=False, max_speed=5.0, page_size=1024
    )
    assert not config.split_buffer
    assert config.max_speed == 5.0
    assert config.tree.page_size == 1024


def test_explicit_partitioner_must_match_partition_count():
    with pytest.raises(ValueError):
        PartitionedMovingObjectForest(
            forest_config(partitions=4, **SIZING),
            partitioner=SpeedPartitioner.uniform(2, 3.0),
        )


def test_members_share_the_clock():
    forest = make_forest(partitions=3)
    forest.clock.advance_to(7.0)
    assert all(tree.now == 7.0 for tree in forest.trees)


# -- routing ------------------------------------------------------------------


def test_insert_routes_by_speed_class():
    forest = make_forest(partitions=3, max_speed=3.0)
    forest.insert(1, MovingPoint((1.0, 1.0), (0.1, 0.0), 0.0, 50.0))
    forest.insert(2, MovingPoint((2.0, 2.0), (1.5, 0.0), 0.0, 50.0))
    forest.insert(3, MovingPoint((3.0, 3.0), (2.9, 0.0), 0.0, 50.0))
    assert [tree.leaf_entry_count for tree in forest.trees] == [1, 1, 1]


def test_delete_routes_to_the_inserting_tree():
    forest = make_forest(partitions=2, max_speed=3.0)
    fast = MovingPoint((1.0, 1.0), (2.9, 0.0), 0.0, 50.0)
    forest.insert(1, fast)
    assert forest.delete(1, fast)
    assert forest.leaf_entry_count == 0
    assert not forest.delete(1, fast)


def test_update_migrates_between_speed_classes():
    forest = make_forest(partitions=2, max_speed=3.0)
    slow = MovingPoint((1.0, 1.0), (0.1, 0.0), 0.0, 50.0)
    forest.insert(1, slow)
    assert forest.trees[0].leaf_entry_count == 1
    fast = MovingPoint((1.0, 1.0), (2.9, 0.0), 0.0, 50.0)
    assert forest.update(1, slow, fast)
    assert forest.trees[0].leaf_entry_count == 0
    assert forest.trees[1].leaf_entry_count == 1


# -- aggregation --------------------------------------------------------------


def test_aggregated_stats_and_pages():
    rng = random.Random(3)
    forest = make_forest(partitions=4)
    for oid in range(120):
        forest.insert(oid, velocity_point(rng, forest.clock))
    assert forest.page_count == sum(forest.partition_page_counts())
    snaps = forest.partition_snapshots()
    total = forest.stats.snapshot()
    assert total.reads == sum(s.reads for s in snaps)
    assert total.writes == sum(s.writes for s in snaps)
    before = forest.stats.snapshot()
    forest.query(TimesliceQuery(Rect((0.0, 0.0), (50.0, 50.0)), 1.0))
    assert forest.stats.since(before).total >= 0
    assert forest.stats.total == total.total + forest.stats.since(before).total


def test_audit_sums_members():
    rng = random.Random(4)
    forest = make_forest(partitions=3)
    for oid in range(90):
        forest.insert(oid, velocity_point(rng, forest.clock))
    audit = forest.audit()
    members = forest.partition_audits()
    assert audit.leaf_entries == sum(a.leaf_entries for a in members) == 90
    assert audit.nodes == sum(a.nodes for a in members)
    assert audit.height == max(a.height for a in members)
    assert len(forest.partition_labels()) == 3


# -- bulk loading -------------------------------------------------------------


def test_bulk_load_requires_empty_forest():
    forest = make_forest(partitions=2)
    forest.insert(1, MovingPoint((1.0, 1.0), (0.1, 0.0), 0.0, 50.0))
    with pytest.raises(ValueError, match="empty forest"):
        forest.bulk_load([(MovingPoint((2.0, 2.0), (0.1, 0.0), 0.0, 50.0), 2)])


def test_bulk_load_refits_data_driven_boundaries():
    rng = random.Random(5)
    clock = SimulationClock()
    forest = make_forest(partitions=4, clock=clock)
    entries = [(velocity_point(rng, clock), oid) for oid in range(200)]
    forest.bulk_load(entries)
    # Quantile boundaries: each member holds ~a quarter of the entries.
    counts = [tree.leaf_entry_count for tree in forest.trees]
    assert sum(counts) == 200
    assert min(counts) >= 40
    forest.check_invariants()


def test_bulk_load_without_refit_keeps_uniform_buckets():
    rng = random.Random(6)
    clock = SimulationClock()
    forest = make_forest(partitions=4, clock=clock, refit_on_bulk_load=False)
    boundaries = forest.partitioner.boundaries
    forest.bulk_load([(velocity_point(rng, clock), oid) for oid in range(50)])
    assert forest.partitioner.boundaries == boundaries


# -- scheduled-deletion wrapping ---------------------------------------------


def test_forest_wraps_in_scheduled_deletion_index():
    rng = random.Random(7)
    clock = SimulationClock()
    forest = make_forest(partitions=2, clock=clock)
    index = ScheduledDeletionIndex(forest, queue_buffer_pages=8)
    for oid in range(40):
        index.insert(oid, velocity_point(rng, clock, max_life=10.0))
    assert index.pending_events == 40
    index.advance_time(100.0)
    assert index.scheduled_deletions == 40
    assert index.missed_deletions == 0
    assert forest.audit().leaf_entries == 0


# -- oracle equivalence -------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    kind=st.sampled_from(["speed", "direction"]),
    bulk=st.booleans(),
)
def test_forest_answers_equal_single_tree_oracle(seed, kind, bulk):
    """Queries of all three types, across partitioners, after bulk_load
    and across expirations, must return exactly a single tree's answers."""
    rng = random.Random(seed)
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest(
        forest_config(partitions=4, partitioner=kind, **SIZING), clock
    )
    oracle = MovingObjectTree(rexp_config(**SIZING), clock)
    live = {}

    def check_queries():
        t1 = clock.time + rng.uniform(0.0, 10.0)
        t2 = t1 + rng.uniform(0.0, 10.0)
        xs = sorted(rng.uniform(0.0, 100.0) for _ in range(2))
        ys = sorted(rng.uniform(0.0, 100.0) for _ in range(2))
        rect1 = Rect((xs[0], ys[0]), (xs[1], ys[1]))
        dx, dy = rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)
        rect2 = Rect(
            (xs[0] + dx, ys[0] + dy), (xs[1] + dx, ys[1] + dy)
        )
        for query in (
            TimesliceQuery(rect1, t1),
            WindowQuery(rect1, t1, t2),
            MovingQuery(rect1, rect2, t1, t2),
        ):
            assert sorted(forest.query(query)) == sorted(oracle.query(query))

    initial = [(oid, velocity_point(rng, clock)) for oid in range(30)]
    if bulk:
        forest.bulk_load([(point, oid) for oid, point in initial])
        oracle.bulk_load([(point, oid) for oid, point in initial])
    else:
        for oid, point in initial:
            forest.insert(oid, point)
            oracle.insert(oid, point)
    live.update(initial)
    next_oid = len(initial)
    check_queries()

    for _ in range(15):
        roll = rng.random()
        if roll < 0.25:
            point = velocity_point(rng, clock)
            forest.insert(next_oid, point)
            oracle.insert(next_oid, point)
            live[next_oid] = point
            next_oid += 1
        elif roll < 0.55 and live:
            oid = rng.choice(sorted(live))
            new = velocity_point(rng, clock)
            assert forest.update(oid, live[oid], new) == oracle.update(
                oid, live[oid], new
            )
            live[oid] = new
        elif roll < 0.7 and live:
            oid = rng.choice(sorted(live))
            point = live.pop(oid)
            assert forest.delete(oid, point) == oracle.delete(oid, point)
        else:
            # Let reports expire, exercising lazy purging in both.
            clock.advance_to(clock.time + rng.uniform(0.0, 8.0))
    check_queries()
    forest.check_invariants()
