"""Tests for the simulation clock."""

from repro.core.clock import SimulationClock


def test_starts_at_given_time():
    assert SimulationClock(5.0).time == 5.0
    assert SimulationClock().time == 0.0


def test_advance_moves_forward():
    clock = SimulationClock()
    clock.advance_to(10.0)
    assert clock.time == 10.0


def test_advance_backwards_is_noop():
    clock = SimulationClock(10.0)
    clock.advance_to(5.0)
    assert clock.time == 10.0


def test_now_is_callable_view():
    clock = SimulationClock(1.0)
    now = clock.now
    clock.advance_to(2.5)
    assert now() == 2.5
