"""Tests for the self-tuning time horizon (Section 4.2.3)."""

import pytest

from repro.core.clock import SimulationClock
from repro.core.horizon import HorizonTracker


def make_tracker(batch=10, alpha=0.5, default_ui=60.0):
    clock = SimulationClock()
    tracker = HorizonTracker(
        clock.now, batch_size=batch, alpha=alpha, default_ui=default_ui
    )
    return clock, tracker


def test_default_ui_before_first_batch():
    _, tracker = make_tracker(default_ui=42.0)
    assert tracker.update_interval == 42.0
    assert tracker.querying_window == 21.0
    assert tracker.insertion_horizon() == 63.0


def test_ui_estimated_from_insertion_rate():
    """UI = (elapsed / b) * N: N objects updating once per UI produce
    insertions every UI / N."""
    clock, tracker = make_tracker(batch=10)
    tracker.leaf_entries_changed(+100)
    # 100 objects, each updating every 50 time units -> an insertion
    # every 0.5 time units.
    for i in range(10):
        clock.advance_to((i + 1) * 0.5)
        tracker.record_insertion()
    assert tracker.update_interval == pytest.approx(50.0)


def test_ui_reestimated_every_batch():
    clock, tracker = make_tracker(batch=5)
    tracker.leaf_entries_changed(+10)
    for i in range(5):
        clock.advance_to((i + 1) * 1.0)
        tracker.record_insertion()
    first = tracker.update_interval
    # Rate doubles: insertions every 0.5 time units.
    for i in range(5):
        clock.advance_to(5.0 + (i + 1) * 0.5)
        tracker.record_insertion()
    assert tracker.update_interval == pytest.approx(first / 2.0)


def test_partial_batch_does_not_update_estimate():
    clock, tracker = make_tracker(batch=10, default_ui=60.0)
    tracker.leaf_entries_changed(+100)
    for i in range(9):
        clock.advance_to((i + 1) * 0.001)
        tracker.record_insertion()
    assert tracker.update_interval == 60.0


def test_leaf_entry_counting_clamps_at_zero():
    _, tracker = make_tracker()
    tracker.leaf_entries_changed(+5)
    tracker.leaf_entries_changed(-10)
    assert tracker.leaf_entries == 0


def test_bounding_horizon_shrinks_with_level_population():
    """UI_l = UI * N_l / N: rectangles over populous levels are
    recomputed more often than the leaf update interval suggests."""
    _, tracker = make_tracker(default_ui=60.0, alpha=0.5)
    tracker.leaf_entries_changed(+1000)
    tracker.node_count_changed(0, +50)   # 50 leaves -> 50 level-1 entries
    tracker.node_count_changed(1, +5)    # 5 level-1 nodes
    w = tracker.querying_window
    leaf_node_horizon = tracker.bounding_horizon(0)
    upper_node_horizon = tracker.bounding_horizon(1)
    assert leaf_node_horizon == pytest.approx(60.0 * 50 / 1000 + w)
    assert upper_node_horizon == pytest.approx(60.0 * 5 / 1000 + w)
    assert upper_node_horizon < leaf_node_horizon


def test_bounding_horizon_defaults_to_ui_when_untracked():
    _, tracker = make_tracker(default_ui=60.0, alpha=0.5)
    assert tracker.bounding_horizon(3) == pytest.approx(60.0 + 30.0)


def test_bounding_horizon_never_exceeds_insertion_horizon():
    _, tracker = make_tracker(default_ui=60.0)
    tracker.leaf_entries_changed(+10)
    tracker.node_count_changed(0, +500)  # pathological bookkeeping
    assert tracker.bounding_horizon(0) <= tracker.insertion_horizon()


def test_invalid_batch_size_rejected():
    clock = SimulationClock()
    with pytest.raises(ValueError):
        HorizonTracker(clock.now, batch_size=0)
