"""Tests for STR bulk loading (Sort-Tile-Recurse packing).

The load-bearing property: a bulk-loaded tree answers every query
exactly like an insert-built tree over the same reports — only the
partitioning (and therefore the I/O cost) may differ.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MovingObjectTree, SimulationClock, rexp_config
from repro.core.bulkload import leaf_key, str_runs
from repro.core.presets import tpr_config
from repro.geometry.kinematics import NEVER, MovingPoint
from repro.geometry.queries import TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect

CONFIG = rexp_config(page_size=512, buffer_pages=8, default_ui=30.0)


def random_reports(n, seed=0, space=100.0, infinite_fraction=0.0):
    rng = random.Random(seed)
    reports = []
    for oid in range(n):
        pos = (rng.uniform(0.0, space), rng.uniform(0.0, space))
        vel = (rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0))
        if infinite_fraction and rng.random() < infinite_fraction:
            t_exp = NEVER
        else:
            t_exp = rng.uniform(5.0, 120.0)
        reports.append((MovingPoint(pos, vel, 0.0, t_exp), oid))
    return reports


# -- str_runs ----------------------------------------------------------------


@given(
    n=st.integers(min_value=1, max_value=400),
    capacity=st.integers(min_value=3, max_value=40),
    seed=st.integers(min_value=0, max_value=10),
)
@settings(deadline=None)
def test_str_runs_partition_invariants(n, capacity, seed):
    items = random_reports(n, seed=seed)
    keys = [leaf_key(point, 30.0) for point, _ in items]
    min_entries = max(2, int(capacity * 0.4))
    runs = str_runs(items, keys, capacity, min_entries)
    flat = [entry for run in runs for entry in run]
    assert sorted(oid for _, oid in flat) == list(range(n))
    assert all(len(run) <= capacity for run in runs)
    if len(runs) > 1 and n >= 2 * min_entries:
        assert all(len(run) >= min_entries for run in runs)


def test_str_runs_empty():
    assert str_runs([], [], 10, 4) == []


def test_str_runs_groups_by_projected_position():
    # Two clusters that swap sides over the horizon must be tiled by
    # where they will be, not where they are.
    left_going_right = [
        (MovingPoint((0.0 + i, 50.0), (10.0, 0.0), 0.0, 100.0), i)
        for i in range(4)
    ]
    right_going_left = [
        (MovingPoint((100.0 + i, 50.0), (-10.0, 0.0), 0.0, 100.0), 10 + i)
        for i in range(4)
    ]
    items = left_going_right + right_going_left
    keys = [leaf_key(point, 10.0) for point, _ in items]  # positions swapped
    runs = str_runs(items, keys, 4, 2)
    assert len(runs) == 2
    # At t=10 the right-going-left cluster sits at x=0, so it tiles first.
    assert {oid for _, oid in runs[0]} == {10, 11, 12, 13}


# -- tree bulk loading -------------------------------------------------------


def _insert_built(reports, config=CONFIG):
    tree = MovingObjectTree(config, SimulationClock())
    for point, oid in reports:
        tree.insert(oid, point)
    return tree


def _bulk_loaded(reports, config=CONFIG):
    tree = MovingObjectTree(config, SimulationClock())
    tree.bulk_load(reports)
    return tree


def _query_grid(space=100.0, cell=25.0, times=(0.0, 10.0, 40.0)):
    queries = []
    steps = int(space / cell)
    for i in range(steps):
        for j in range(steps):
            rect = Rect(
                (i * cell, j * cell), ((i + 1) * cell, (j + 1) * cell)
            )
            for t in times:
                queries.append(TimesliceQuery(rect, t))
            queries.append(WindowQuery(rect, times[0], times[-1]))
    return queries


@pytest.mark.parametrize("n", [1, 7, 60, 500])
def test_bulk_load_matches_insert_built_queries(n):
    reports = random_reports(n, seed=n, infinite_fraction=0.1)
    inserted = _insert_built(reports)
    bulked = _bulk_loaded(reports)
    bulked.check_invariants()
    for query in _query_grid():
        assert sorted(bulked.query(query)) == sorted(inserted.query(query))


def test_bulk_load_structure_and_accounting():
    reports = random_reports(500, seed=3)
    tree = _bulk_loaded(reports)
    audit = tree.audit()
    assert audit.leaf_entries == 500
    assert tree.leaf_entry_count == 500
    assert audit.nodes == tree.page_count
    # Every page is written exactly once and never read back (+1: the
    # pinned root page was already flushed empty at construction).
    assert tree.stats.reads == 0
    assert tree.stats.writes == tree.page_count + 1
    # Packing beats insertion on page count: leaves are near-full.
    inserted = _insert_built(reports)
    assert tree.page_count <= inserted.page_count


def test_bulk_load_requires_empty_tree():
    tree = MovingObjectTree(CONFIG, SimulationClock())
    point, oid = random_reports(1)[0]
    tree.insert(oid, point)
    with pytest.raises(ValueError, match="empty"):
        tree.bulk_load(random_reports(5))


def test_bulk_load_rejects_wrong_dimensionality():
    tree = MovingObjectTree(CONFIG, SimulationClock())
    with pytest.raises(ValueError, match="2-d"):
        tree.bulk_load([(MovingPoint((1.0,), (0.0,), 0.0, 10.0), 1)])


def test_bulk_load_empty_is_noop():
    tree = MovingObjectTree(CONFIG, SimulationClock())
    tree.bulk_load([])
    assert tree.audit().leaf_entries == 0
    tree.check_invariants()


def test_bulk_load_strips_expiration_for_tpr_tree():
    config = tpr_config(page_size=512, buffer_pages=8)
    tree = _bulk_loaded(random_reports(50, seed=5), config=config)
    for pid in tree.disk.page_ids():
        node = tree.disk.peek(pid)
        if node.is_leaf:
            for point, _ in node.entries:
                assert math.isinf(point.t_exp)


def test_bulk_load_then_updates_keep_invariants():
    reports = random_reports(200, seed=9)
    tree = _bulk_loaded(reports)
    clock = tree.clock
    rng = random.Random(1)
    for step, (point, oid) in enumerate(reports[:80]):
        clock.advance_to(clock.time + 0.5)
        new = MovingPoint(
            (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            (rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)),
            clock.time,
            clock.time + rng.uniform(5.0, 120.0),
        )
        tree.update(oid, point, new)
        if step % 20 == 0:
            tree.check_invariants()
    tree.check_invariants()


def test_query_soa_cache_invalidated_by_updates():
    # Queries cache a packed per-node form; any mutation must drop it,
    # or later queries would answer from stale entries.
    reports = random_reports(300, seed=11)
    tree = _bulk_loaded(reports)
    probe = TimesliceQuery(Rect((40.0, 40.0), (60.0, 60.0)), 1.0)
    tree.query(probe)  # populate the caches
    newcomer = MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, 500.0)
    tree.insert(9999, newcomer)
    assert 9999 in tree.query(probe)
    victim, vid = reports[0]
    tree.delete(vid, victim)
    assert vid not in tree.query(probe)
