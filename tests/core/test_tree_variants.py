"""Edge-case and configuration-variant tests for the moving-object tree."""

import math
import random

import pytest

from repro.core.clock import SimulationClock
from repro.core.presets import rexp_config
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect


def make_tree(**overrides):
    clock = SimulationClock()
    config = rexp_config(page_size=512, buffer_pages=8, default_ui=10.0).with_(
        **overrides
    )
    return MovingObjectTree(config, clock), clock


def random_point(rng, t, life=20.0):
    return MovingPoint(
        (rng.uniform(0, 100), rng.uniform(0, 100)),
        (rng.uniform(-2, 2), rng.uniform(-2, 2)),
        t,
        t + rng.uniform(0.5, life),
    )


def churn(tree, clock, rng, steps=400, life=3.0):
    live = {}
    t = clock.time
    for step in range(steps):
        t += 0.05
        clock.advance_to(t)
        if live and rng.random() < 0.4:
            oid = rng.choice(list(live))
            new = random_point(rng, t, life)
            tree.update(oid, live[oid], new)
            live[oid] = new
        else:
            p = random_point(rng, t, life)
            tree.insert(step, p)
            live[step] = p
    return live


def test_zero_max_orphans_skips_underfull_handling():
    """The paper's safeguard: a bounded orphans list degrades gracefully
    by tolerating underfull nodes instead of growing the list."""
    tree, clock = make_tree(max_orphans=0)
    rng = random.Random(0)
    churn(tree, clock, rng)
    clock.advance_to(clock.time + 100.0)  # mass expiry
    for oid in range(10_000, 10_050):
        tree.insert(oid, random_point(rng, clock.time, life=5.0))
    # No invariant check on fill here (underfull nodes are allowed), but
    # queries must still be correct and the tree navigable.
    audit = tree.audit()
    assert audit.leaf_entries >= 50


def test_no_reinsert_configuration():
    tree, clock = make_tree(reinsert_fraction=0.0)
    rng = random.Random(1)
    churn(tree, clock, rng, steps=300, life=1000.0)
    tree.check_invariants()


def test_small_min_fill():
    tree, clock = make_tree(min_fill=0.25)
    rng = random.Random(2)
    churn(tree, clock, rng, steps=300, life=1000.0)
    tree.check_invariants()


def test_insertion_into_fully_expired_tree():
    """ChooseSubtree must still descend when every entry has expired."""
    tree, clock = make_tree()
    rng = random.Random(3)
    for oid in range(150):
        tree.insert(oid, random_point(rng, 0.0, life=1.0))
    clock.advance_to(500.0)
    tree.insert(9999, random_point(rng, 500.0, life=10.0))
    tree.check_invariants()
    hits = tree.query(
        TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), 500.5)
    )
    assert hits == [9999]


def test_query_on_empty_tree():
    tree, clock = make_tree()
    assert tree.query(TimesliceQuery(Rect((0.0, 0.0), (1.0, 1.0)), 0.0)) == []


def test_delete_on_empty_tree():
    tree, clock = make_tree()
    assert not tree.delete(1, MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, 1.0))


def test_infinite_expiration_points_in_rexp_tree():
    """R^exp-trees accept never-expiring objects (t_exp = infinity)."""
    tree, clock = make_tree()
    rng = random.Random(4)
    for oid in range(100):
        p = MovingPoint(
            (rng.uniform(0, 100), rng.uniform(0, 100)),
            (rng.uniform(-2, 2), rng.uniform(-2, 2)),
            0.0,
            math.inf if oid % 3 == 0 else rng.uniform(1.0, 10.0),
        )
        tree.insert(oid, p)
    clock.advance_to(100.0)
    hits = tree.query(TimesliceQuery(Rect((-500.0, -500.0), (600.0, 600.0)), 100.0))
    # Only the infinite-expiry third survives.
    assert len(hits) == len([o for o in range(100) if o % 3 == 0])
    tree.check_invariants()


def test_bounding_horizon_levels_used_during_growth():
    tree, clock = make_tree()
    rng = random.Random(5)
    churn(tree, clock, rng, steps=500, life=1000.0)
    assert tree.height >= 3
    # Upper levels see shorter recomputation horizons than UI + W.
    assert tree.horizon.bounding_horizon(
        tree.height - 1
    ) <= tree.horizon.insertion_horizon() + 1e-9


def test_ui_estimate_converges_during_run():
    tree, clock = make_tree(default_ui=1000.0)
    rng = random.Random(6)
    # 100 live objects, each updating every ~2 time units.
    live = {}
    t = 0.0
    for oid in range(100):
        p = random_point(rng, t, life=1000.0)
        tree.insert(oid, p)
        live[oid] = p
    for step in range(800):
        t += 0.02
        clock.advance_to(t)
        oid = rng.choice(list(live))
        new = random_point(rng, t, life=1000.0)
        tree.update(oid, live[oid], new)
        live[oid] = new
    # True UI = 100 objects * 0.02 per update = 2.0.
    assert tree.horizon.update_interval == pytest.approx(2.0, rel=0.3)


def test_stats_reset_between_operations_not_needed():
    """I/O counters are cumulative; snapshots isolate operations."""
    tree, clock = make_tree()
    rng = random.Random(7)
    before = tree.stats.snapshot()
    tree.insert(1, random_point(rng, 0.0))
    first = tree.stats.since(before)
    before2 = tree.stats.snapshot()
    tree.insert(2, random_point(rng, 0.0))
    second = tree.stats.since(before2)
    assert first.total >= 1
    assert second.total >= 1
