"""Tests for the velocity partitioners."""

import math

import pytest

from repro.core.partition import (
    DirectionPartitioner,
    SpeedPartitioner,
    make_partitioner,
)
from repro.geometry.kinematics import MovingPoint


def moving(vel):
    return MovingPoint((0.0, 0.0), vel, 0.0, 100.0)


# -- speed buckets ------------------------------------------------------------


def test_uniform_speed_buckets():
    part = SpeedPartitioner.uniform(3, max_speed=3.0)
    assert part.partitions == 3
    assert part.boundaries == (1.0, 2.0)
    assert part.partition_of(moving((0.5, 0.0))) == 0
    assert part.partition_of(moving((1.0, 0.0))) == 1  # boundary goes right
    assert part.partition_of(moving((0.0, 1.5))) == 1
    assert part.partition_of(moving((2.5, 0.0))) == 2
    assert part.partition_of(moving((99.0, 0.0))) == 2  # open-ended top


def test_speed_uses_euclidean_magnitude():
    part = SpeedPartitioner.uniform(2, max_speed=2.0)
    # |(0.8, 0.8)| ~ 1.13 > 1.0, the inner boundary.
    assert part.partition_of(moving((0.8, 0.8))) == 1


def test_fitted_boundaries_balance_the_sample():
    speeds = [float(i) for i in range(100)]
    part = SpeedPartitioner.fitted(speeds, 4)
    assert part.partitions == 4
    assert part.boundaries == (25.0, 50.0, 75.0)
    counts = [0, 0, 0, 0]
    for s in speeds:
        counts[part.partition_of(moving((s, 0.0)))] += 1
    assert counts == [25, 25, 25, 25]


def test_fitted_skewed_sample_still_splits_the_bulk():
    # 90% slow, 10% fast: equal-width buckets would dump 90% into one
    # tree; quantile boundaries keep the slow mass spread out.
    speeds = [0.1] * 45 + [0.2] * 45 + [9.0] * 10
    part = SpeedPartitioner.fitted(speeds, 2)
    assert part.boundaries[0] == pytest.approx(0.2)


def test_single_partition_routes_everything_to_bucket_zero():
    part = SpeedPartitioner.uniform(1, max_speed=3.0)
    assert part.partitions == 1
    assert part.partition_of(moving((2.0, 2.0))) == 0


def test_speed_partitioner_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        SpeedPartitioner([2.0, 1.0])
    with pytest.raises(ValueError):
        SpeedPartitioner([-1.0])
    with pytest.raises(ValueError):
        SpeedPartitioner.fitted([], 2)
    with pytest.raises(ValueError):
        SpeedPartitioner.uniform(0, max_speed=3.0)


def test_speed_labels_cover_the_axis():
    part = SpeedPartitioner.uniform(3, max_speed=3.0)
    labels = [part.label(i) for i in range(part.partitions)]
    assert labels == ["speed [0, 1)", "speed [1, 2)", "speed >= 2"]


# -- direction sectors --------------------------------------------------------


def test_direction_sectors_partition_the_circle():
    part = DirectionPartitioner(4, slow_speed=0.0)
    assert part.partitions == 5
    assert part.partition_of(moving((1.0, 0.0))) == 1    # east: [0, 90)
    assert part.partition_of(moving((0.0, 1.0))) == 2    # north: [90, 180)
    assert part.partition_of(moving((-1.0, 0.0))) == 3   # west: [180, 270)
    assert part.partition_of(moving((0.0, -1.0))) == 4   # south: [270, 360)


def test_direction_slow_bucket():
    part = DirectionPartitioner(4, slow_speed=0.5)
    assert part.partition_of(moving((0.1, 0.1))) == 0
    assert part.partition_of(moving((0.0, 0.0))) == 0
    assert part.partition_of(moving((2.0, 0.1))) == 1


def test_direction_full_angle_never_overflows():
    part = DirectionPartitioner(3, slow_speed=0.0)
    for k in range(64):
        angle = 2.0 * math.pi * k / 64.0
        vel = (math.cos(angle), math.sin(angle))
        assert 1 <= part.partition_of(moving(vel)) <= 3


def test_split_buckets_leaf_entries():
    part = SpeedPartitioner.uniform(2, max_speed=2.0)
    slow, fast = moving((0.1, 0.0)), moving((1.9, 0.0))
    groups = part.split([(slow, 1), (fast, 2), (slow, 3)])
    assert groups == [[(slow, 1), (slow, 3)], [(fast, 2)]]


# -- factory ------------------------------------------------------------------


def test_make_partitioner_speed_fits_a_sample():
    part = make_partitioner("speed", 2, sample=[0.0, 1.0, 2.0, 3.0])
    assert isinstance(part, SpeedPartitioner)
    assert part.boundaries == (2.0,)


def test_make_partitioner_direction_reserves_slow_bucket():
    part = make_partitioner("direction", 4)
    assert isinstance(part, DirectionPartitioner)
    assert part.partitions == 4
    assert part.sectors == 3


def test_make_partitioner_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_partitioner("acceleration", 4)
    with pytest.raises(ValueError):
        make_partitioner("direction", 1)


# -- spatial grid -------------------------------------------------------------


def grid_point(x, y):
    return MovingPoint((x, y), (0.0, 0.0), 0.0, 100.0)


def test_grid_for_partitions_factorizes_near_square():
    from repro.core.partition import GridPartitioner

    grid = GridPartitioner.for_partitions(8, space=100.0)
    assert (grid.cells_x, grid.cells_y) == (4, 2)
    assert grid.partitions == 8
    strip = GridPartitioner.for_partitions(7, space=100.0)
    assert (strip.cells_x, strip.cells_y) == (7, 1)


def test_grid_routes_by_reference_position_and_clamps():
    from repro.core.partition import GridPartitioner

    grid = GridPartitioner(2, 2, space=100.0)
    assert grid.partition_of(grid_point(10.0, 10.0)) == 0
    assert grid.partition_of(grid_point(90.0, 10.0)) == 1
    assert grid.partition_of(grid_point(10.0, 90.0)) == 2
    assert grid.partition_of(grid_point(90.0, 90.0)) == 3
    # Out-of-space positions clamp to edge cells: routing stays total.
    assert grid.partition_of(grid_point(-5.0, 1e9)) == 2
    assert len({grid.label(i) for i in range(4)}) == 4


def test_grid_scatter_prunes_with_reach_and_defaults_to_all():
    from repro.core.partition import GridPartitioner
    from repro.geometry.queries import TimesliceQuery
    from repro.geometry.rect import Rect

    query = TimesliceQuery(Rect((5.0, 5.0), (10.0, 10.0)), 1.0)
    everywhere = GridPartitioner(2, 2, space=100.0)
    assert everywhere.query_partitions(query.region()) == (0, 1, 2, 3)
    pruned = GridPartitioner(2, 2, space=100.0, reach=10.0)
    assert pruned.query_partitions(query.region()) == (0,)


def test_fitted_grid_balances_a_skewed_sample():
    from repro.core.partition import GridPartitioner

    # Three quarters of the mass crammed into the lower-left corner.
    sample = [(x / 10.0, x / 10.0) for x in range(75)]
    sample += [(50.0 + x / 2.0, 80.0) for x in range(25)]
    grid = GridPartitioner.fitted(sample, 2, 2, space=100.0)
    counts = [0, 0, 0, 0]
    for x, y in sample:
        counts[grid.partition_of(grid_point(x, y))] += 1
    assert max(counts) <= 30  # a uniform grid would put 75 in one cell
    uniform = GridPartitioner(2, 2, space=100.0)
    uniform_counts = [0, 0, 0, 0]
    for x, y in sample:
        uniform_counts[uniform.partition_of(grid_point(x, y))] += 1
    assert max(uniform_counts) >= 70


def test_fitted_grid_validates_cut_shapes():
    from repro.core.partition import GridPartitioner

    with pytest.raises(ValueError, match="together"):
        GridPartitioner(2, 2, x_cuts=(50.0,))
    with pytest.raises(ValueError, match="column cuts"):
        GridPartitioner(2, 2, x_cuts=(1.0, 2.0), y_cuts=((1.0,), (1.0,)))
    with pytest.raises(ValueError, match="sorted"):
        GridPartitioner(
            3, 2, x_cuts=(2.0, 1.0), y_cuts=((1.0,), (1.0,), (1.0,))
        )
    with pytest.raises(ValueError):
        GridPartitioner.fitted([], 2, 2)


def test_make_partitioner_grid():
    from repro.core.partition import GridPartitioner

    part = make_partitioner("grid", 4, space=200.0, reach=30.0)
    assert isinstance(part, GridPartitioner)
    assert part.partitions == 4
    assert part.space == 200.0
    assert part.reach == 30.0
