"""Tests for the velocity partitioners."""

import math

import pytest

from repro.core.partition import (
    DirectionPartitioner,
    SpeedPartitioner,
    make_partitioner,
)
from repro.geometry.kinematics import MovingPoint


def moving(vel):
    return MovingPoint((0.0, 0.0), vel, 0.0, 100.0)


# -- speed buckets ------------------------------------------------------------


def test_uniform_speed_buckets():
    part = SpeedPartitioner.uniform(3, max_speed=3.0)
    assert part.partitions == 3
    assert part.boundaries == (1.0, 2.0)
    assert part.partition_of(moving((0.5, 0.0))) == 0
    assert part.partition_of(moving((1.0, 0.0))) == 1  # boundary goes right
    assert part.partition_of(moving((0.0, 1.5))) == 1
    assert part.partition_of(moving((2.5, 0.0))) == 2
    assert part.partition_of(moving((99.0, 0.0))) == 2  # open-ended top


def test_speed_uses_euclidean_magnitude():
    part = SpeedPartitioner.uniform(2, max_speed=2.0)
    # |(0.8, 0.8)| ~ 1.13 > 1.0, the inner boundary.
    assert part.partition_of(moving((0.8, 0.8))) == 1


def test_fitted_boundaries_balance_the_sample():
    speeds = [float(i) for i in range(100)]
    part = SpeedPartitioner.fitted(speeds, 4)
    assert part.partitions == 4
    assert part.boundaries == (25.0, 50.0, 75.0)
    counts = [0, 0, 0, 0]
    for s in speeds:
        counts[part.partition_of(moving((s, 0.0)))] += 1
    assert counts == [25, 25, 25, 25]


def test_fitted_skewed_sample_still_splits_the_bulk():
    # 90% slow, 10% fast: equal-width buckets would dump 90% into one
    # tree; quantile boundaries keep the slow mass spread out.
    speeds = [0.1] * 45 + [0.2] * 45 + [9.0] * 10
    part = SpeedPartitioner.fitted(speeds, 2)
    assert part.boundaries[0] == pytest.approx(0.2)


def test_single_partition_routes_everything_to_bucket_zero():
    part = SpeedPartitioner.uniform(1, max_speed=3.0)
    assert part.partitions == 1
    assert part.partition_of(moving((2.0, 2.0))) == 0


def test_speed_partitioner_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        SpeedPartitioner([2.0, 1.0])
    with pytest.raises(ValueError):
        SpeedPartitioner([-1.0])
    with pytest.raises(ValueError):
        SpeedPartitioner.fitted([], 2)
    with pytest.raises(ValueError):
        SpeedPartitioner.uniform(0, max_speed=3.0)


def test_speed_labels_cover_the_axis():
    part = SpeedPartitioner.uniform(3, max_speed=3.0)
    labels = [part.label(i) for i in range(part.partitions)]
    assert labels == ["speed [0, 1)", "speed [1, 2)", "speed >= 2"]


# -- direction sectors --------------------------------------------------------


def test_direction_sectors_partition_the_circle():
    part = DirectionPartitioner(4, slow_speed=0.0)
    assert part.partitions == 5
    assert part.partition_of(moving((1.0, 0.0))) == 1    # east: [0, 90)
    assert part.partition_of(moving((0.0, 1.0))) == 2    # north: [90, 180)
    assert part.partition_of(moving((-1.0, 0.0))) == 3   # west: [180, 270)
    assert part.partition_of(moving((0.0, -1.0))) == 4   # south: [270, 360)


def test_direction_slow_bucket():
    part = DirectionPartitioner(4, slow_speed=0.5)
    assert part.partition_of(moving((0.1, 0.1))) == 0
    assert part.partition_of(moving((0.0, 0.0))) == 0
    assert part.partition_of(moving((2.0, 0.1))) == 1


def test_direction_full_angle_never_overflows():
    part = DirectionPartitioner(3, slow_speed=0.0)
    for k in range(64):
        angle = 2.0 * math.pi * k / 64.0
        vel = (math.cos(angle), math.sin(angle))
        assert 1 <= part.partition_of(moving(vel)) <= 3


def test_split_buckets_leaf_entries():
    part = SpeedPartitioner.uniform(2, max_speed=2.0)
    slow, fast = moving((0.1, 0.0)), moving((1.9, 0.0))
    groups = part.split([(slow, 1), (fast, 2), (slow, 3)])
    assert groups == [[(slow, 1), (slow, 3)], [(fast, 2)]]


# -- factory ------------------------------------------------------------------


def test_make_partitioner_speed_fits_a_sample():
    part = make_partitioner("speed", 2, sample=[0.0, 1.0, 2.0, 3.0])
    assert isinstance(part, SpeedPartitioner)
    assert part.boundaries == (2.0,)


def test_make_partitioner_direction_reserves_slow_bucket():
    part = make_partitioner("direction", 4)
    assert isinstance(part, DirectionPartitioner)
    assert part.partitions == 4
    assert part.sectors == 3


def test_make_partitioner_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_partitioner("acceleration", 4)
    with pytest.raises(ValueError):
        make_partitioner("direction", 1)
