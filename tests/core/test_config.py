"""Tests for tree configuration and presets."""

import pytest

from repro.core.config import TreeConfig
from repro.core.presets import (
    bounding_config,
    flavor_config,
    rexp_config,
    tpr_config,
)
from repro.geometry.bounding import BoundingKind


def test_default_config_is_the_papers_best_rexp_flavor():
    config = rexp_config()
    assert config.bounding is BoundingKind.NEAR_OPTIMAL
    assert not config.store_br_expiration
    assert config.store_leaf_expiration
    assert not config.choose_ignores_expiration
    assert not config.use_overlap_in_choose
    assert config.lazy_expiry


def test_tpr_preset_indexes_infinite_lines():
    config = tpr_config()
    assert config.bounding is BoundingKind.CONSERVATIVE
    assert not config.store_leaf_expiration
    assert not config.lazy_expiry
    assert config.use_overlap_in_choose


def test_flavor_config_combinations():
    both = flavor_config(True, True)
    assert both.store_br_expiration and not both.choose_ignores_expiration
    neither = flavor_config(False, False)
    assert not neither.store_br_expiration and neither.choose_ignores_expiration


def test_bounding_config_sets_kind():
    config = bounding_config(BoundingKind.STATIC, algs_with_expiration=False)
    assert config.bounding is BoundingKind.STATIC
    assert config.choose_ignores_expiration


def test_layout_reflects_static_bounding():
    static = bounding_config(BoundingKind.STATIC).layout()
    moving = rexp_config().layout()
    assert not static.store_velocities
    assert moving.store_velocities
    assert static.internal_capacity > moving.internal_capacity


def test_layout_reflects_br_expiration_recording():
    with_exp = flavor_config(True, True).layout()
    without = flavor_config(False, True).layout()
    assert with_exp.internal_capacity < without.internal_capacity


def test_with_overrides():
    config = rexp_config().with_(page_size=1024, buffer_pages=7)
    assert config.page_size == 1024
    assert config.buffer_pages == 7
    # Original values preserved elsewhere.
    assert config.bounding is BoundingKind.NEAR_OPTIMAL


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        TreeConfig(min_fill=0.6)
    with pytest.raises(ValueError):
        TreeConfig(min_fill=0.0)
    with pytest.raises(ValueError):
        TreeConfig(reinsert_fraction=1.0)
    with pytest.raises(ValueError):
        TreeConfig(horizon_alpha=-0.1)
    with pytest.raises(ValueError):
        TreeConfig(default_ui=0.0)
