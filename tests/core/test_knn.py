"""Best-first kNN over the tree and the forest, checked against brute force.

The contract under test is *bit identity*: ``knn_entries`` must return
exactly ``brute_force_knn`` over the live population — same squared
distances (as IEEE-754 bits via tuple equality), same expiration
filtering, same ``(distance, oid)`` tie order — regardless of tree
shape, buffered inserts, or how the population is spread across forest
partitions.
"""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clock import SimulationClock
from repro.core.forest import PartitionedMovingObjectForest
from repro.core.presets import forest_config, rexp_config
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.geometry.knn import brute_force_knn
from repro.obs import MetricsRegistry, Tracer

SIZING = dict(page_size=512, buffer_pages=8, default_ui=10.0)


def make_tree(**overrides):
    clock = SimulationClock()
    return MovingObjectTree(rexp_config(**SIZING, **overrides), clock), clock


def make_forest(partitions=4):
    config = forest_config(
        partitions=partitions, partitioner="speed", **SIZING
    )
    return PartitionedMovingObjectForest(config, SimulationClock())


def random_entries(rng, n, t=0.0, space=100.0, life=30.0,
                   infinite_probability=0.2):
    entries = []
    for oid in range(n):
        if rng.random() < infinite_probability:
            t_exp = math.inf
        else:
            t_exp = t + rng.uniform(0.0, life)
        entries.append((
            MovingPoint(
                (rng.uniform(0, space), rng.uniform(0, space)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                t,
                t_exp,
            ),
            oid,
        ))
    return entries


# -- oracle identity ---------------------------------------------------------


@pytest.mark.parametrize("loader", ["insert", "bulk"])
def test_tree_knn_matches_brute_force(rng, loader):
    tree, _ = make_tree()
    entries = random_entries(rng, 300)
    if loader == "bulk":
        tree.bulk_load(entries)
    else:
        for point, oid in entries:
            tree.insert(oid, point)
    for t in (0.0, 7.0, 19.0, 40.0):
        for k in (1, 5, 23, 400):
            x = (rng.uniform(0, 100), rng.uniform(0, 100))
            assert tree.knn_entries(x, t, k) == brute_force_knn(
                entries, x, t, k
            )
            assert tree.query_knn(x, t, k) == [
                oid for _, oid in brute_force_knn(entries, x, t, k)
            ]


def test_forest_knn_matches_brute_force(rng):
    forest = make_forest()
    entries = random_entries(rng, 400)
    forest.insert_batch([(oid, point) for point, oid in entries])
    for t in (0.0, 11.0, 33.0):
        for k in (1, 7, 50):
            x = (rng.uniform(0, 100), rng.uniform(0, 100))
            assert forest.knn_entries(x, t, k) == brute_force_knn(
                entries, x, t, k
            )


# -- edge cases --------------------------------------------------------------


def test_knn_k_zero_returns_empty():
    tree, _ = make_tree()
    tree.insert(1, MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, math.inf))
    assert tree.knn_entries((0.0, 0.0), 1.0, 0) == []
    assert tree.query_knn((0.0, 0.0), 1.0, 0) == []


def test_knn_k_larger_than_live_population(rng):
    tree, _ = make_tree()
    entries = random_entries(rng, 40, life=10.0, infinite_probability=0.0)
    for point, oid in entries:
        tree.insert(oid, point)
    t = 6.0
    live = [(p, oid) for p, oid in entries if not p.t_exp < t]
    got = tree.knn_entries((50.0, 50.0), t, 1000)
    assert len(got) == len(live)
    assert got == brute_force_knn(entries, (50.0, 50.0), t, 1000)


def test_knn_on_empty_tree_and_fully_expired_tree(rng):
    tree, _ = make_tree()
    assert tree.knn_entries((0.0, 0.0), 1.0, 5) == []
    for point, oid in random_entries(rng, 30, life=5.0,
                                     infinite_probability=0.0):
        tree.insert(oid, point)
    assert tree.knn_entries((50.0, 50.0), 100.0, 5) == []


def test_knn_exact_distance_ties_break_by_oid():
    tree, _ = make_tree()
    # Four stationary points all exactly distance 10 from the origin.
    for oid, pos in ((9, (10.0, 0.0)), (2, (-10.0, 0.0)),
                     (5, (0.0, 10.0)), (1, (0.0, -10.0))):
        tree.insert(oid, MovingPoint(pos, (0.0, 0.0), 0.0, math.inf))
    assert tree.query_knn((0.0, 0.0), 1.0, 3) == [1, 2, 5]
    assert tree.knn_entries((0.0, 0.0), 1.0, 4) == [
        (100.0, 1), (100.0, 2), (100.0, 5), (100.0, 9)
    ]


def test_knn_expired_subtrees_are_pruned_not_visited():
    """A cluster that is entirely expired must not be descended into."""
    registry = MetricsRegistry()
    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(**SIZING), clock)
    tree.enable_observability(registry=registry, tracer=Tracer())
    # Near cluster expires at t=5; far cluster lives forever.
    entries = []
    for oid in range(60):
        entries.append((
            MovingPoint((float(oid % 8), float(oid // 8)),
                        (0.0, 0.0), 0.0, 5.0),
            oid,
        ))
    for oid in range(60, 90):
        entries.append((
            MovingPoint((90.0 + float(oid % 5), 90.0 + float(oid // 5 % 6)),
                        (0.0, 0.0), 0.0, math.inf),
            oid,
        ))
    tree.bulk_load(entries)
    hist = registry.histogram("tree.knn_nodes_visited")
    assert hist.count == 0
    got = tree.knn_entries((0.0, 0.0), 10.0, 5)
    assert got == brute_force_knn(entries, (0.0, 0.0), 10.0, 5)
    assert all(oid >= 60 for _, oid in got)
    # The expired near cluster spans several leaves; pruning them keeps
    # the visit count at a fraction of the node population.
    assert hist.total < tree.audit().nodes
    assert registry.value("tree.knn_queries") == 1


def test_knn_external_bound_prunes_but_keeps_equal_distances():
    tree, _ = make_tree()
    for oid, pos in ((1, (1.0, 0.0)), (2, (2.0, 0.0)), (3, (3.0, 0.0))):
        tree.insert(oid, MovingPoint(pos, (0.0, 0.0), 0.0, math.inf))
    # bound == d^2 of oid 2: equal distances must survive (cross-member
    # tie merging in the forest depends on it), strictly greater must not.
    got = tree.knn_entries((0.0, 0.0), 1.0, 3, bound_sq=4.0)
    assert got == [(1.0, 1), (4.0, 2)]


def test_knn_input_validation():
    tree, _ = make_tree()
    with pytest.raises(ValueError):
        tree.knn_entries((0.0,), 1.0, 1)
    with pytest.raises(ValueError):
        tree.knn_entries((0.0, 0.0), 1.0, -2)
    with pytest.raises(ValueError):
        tree.knn_entries((0.0, math.inf), 1.0, 1)


# -- property: tree and forest agree with the oracle -------------------------


@st.composite
def populations(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**20)))
    return random_entries(rng, n, life=20.0)


@given(
    populations(),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
    st.integers(min_value=0, max_value=70),
    st.tuples(
        st.floats(min_value=-20.0, max_value=120.0, allow_nan=False),
        st.floats(min_value=-20.0, max_value=120.0, allow_nan=False),
    ),
)
def test_knn_property_tree_and_forest_equal_oracle(entries, t, k, x):
    expected = brute_force_knn(entries, x, t, k)
    tree, _ = make_tree()
    for point, oid in entries:
        tree.insert(oid, point)
    assert tree.knn_entries(x, t, k) == expected
    forest = make_forest(partitions=3)
    forest.insert_batch([(oid, point) for point, oid in entries])
    assert forest.knn_entries(x, t, k) == expected
