"""The index works in 1, 2 and 3 dimensions (like the TPR-tree).

The paper's TPR-tree "indexes points that move in one, two, or three
dimensions"; the R^exp-tree inherits that.  These tests run the full
insert/update/query cycle in 1-d and 3-d against a brute-force oracle.
"""

import random

import pytest

from repro.core.clock import SimulationClock
from repro.core.presets import rexp_config
from repro.core.tree import MovingObjectTree
from repro.geometry.intersection import region_matches_point
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect


def make_tree(dims):
    clock = SimulationClock()
    config = rexp_config(
        dims=dims, page_size=512, buffer_pages=8, default_ui=10.0
    )
    return MovingObjectTree(config, clock), clock


def random_point(rng, dims, t, life=20.0):
    return MovingPoint(
        tuple(rng.uniform(0, 100) for _ in range(dims)),
        tuple(rng.uniform(-2, 2) for _ in range(dims)),
        t,
        t + rng.uniform(0.5, life),
    )


@pytest.mark.parametrize("dims", [1, 3])
def test_query_parity_with_oracle(dims):
    tree, clock = make_tree(dims)
    rng = random.Random(dims)
    live = {}
    t = 0.0
    for step in range(600):
        t += 0.03
        clock.advance_to(t)
        if live and rng.random() < 0.4:
            oid = rng.choice(list(live))
            new = random_point(rng, dims, t)
            tree.update(oid, live[oid], new)
            live[oid] = new
        else:
            p = random_point(rng, dims, t)
            tree.insert(step, p)
            live[step] = p
    tree.check_invariants()
    for _ in range(40):
        lo = tuple(rng.uniform(0, 85) for _ in range(dims))
        hi = tuple(c + 15.0 for c in lo)
        q = WindowQuery(Rect(lo, hi), t, t + rng.uniform(0, 8))
        got = sorted(tree.query(q))
        want = sorted(
            oid for oid, p in live.items()
            if region_matches_point(q.region(), p)
        )
        assert got == want


def test_one_dimensional_figure1_scenario():
    """The paper's Figure 1: cars on a road, expiring and updating."""
    tree, clock = make_tree(1)
    # o1: moving up, updated at time 2, new report expires at 9.
    o1_first = MovingPoint((-15.0,), (5.0,), 0.0, 2.5)
    tree.insert(1, o1_first)
    clock.advance_to(2.0)
    o1_second = MovingPoint((-3.0,), (4.0,), 2.0, 9.0)
    tree.update(1, o1_first, o1_second)
    # Q1 at time 4 around the predicted position of o1.
    q1 = TimesliceQuery(Rect((0.0,), (10.0,)), 4.0)
    assert tree.query(q1) == [1]
    # After o1's expiration no query reports it.
    q_late = TimesliceQuery(Rect((-50.0,), (50.0,)), 9.5)
    assert tree.query(q_late) == []


def test_three_dimensional_capacities_shrink():
    tree2, _ = make_tree(2)
    tree3, _ = make_tree(3)
    assert tree3.leaf_capacity < tree2.leaf_capacity
    assert tree3.internal_capacity < tree2.internal_capacity
