"""The serving layer must not perturb the classic no-frontend path.

The frontend, pending-commit retry logic and snapshot machinery are all
opt-in; a plain ``run_workload`` replay (simulated or durable) must
behave exactly as before — same answers, same I/O charges, and for
durable runs a byte-identical page file across repeated runs.
"""

import os

from repro.core.presets import rexp_config
from repro.experiments.adapters import TreeAdapter
from repro.experiments.runner import run_workload
from repro.storage.pagefile import PAGES_FILENAME
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload

CONFIG = rexp_config(page_size=512, buffer_pages=8, default_ui=10.0)


def _workload():
    params = UniformParams(
        target_population=40,
        insertions=400,
        update_interval=10.0,
        space=100.0,
        queries_per_insertions=10,
        seed=11,
    )
    return generate_uniform_workload(params, FixedPeriod(20.0))


def test_simulated_run_workload_verifies_clean():
    result = run_workload(TreeAdapter("t", CONFIG), _workload(), verify=True)
    assert result.oracle_mismatches == 0
    assert result.search_ops > 0 and result.update_ops > 0


def test_durable_run_workload_is_reproducible(tmp_path):
    """Two no-frontend durable replays are bit-identical on disk."""
    workload = _workload()
    results = []
    for name in ("a", "b"):
        adapter = TreeAdapter(name, CONFIG)
        results.append(
            run_workload(
                adapter, workload, verify=True,
                durability=str(tmp_path / name),
            )
        )
    a, b = results
    assert a.oracle_mismatches == b.oracle_mismatches == 0
    for field in (
        "avg_search_io", "avg_update_io", "avg_update_io_with_aux",
        "search_ops", "update_ops", "page_count", "leaf_entries",
        "failed_deletes", "auxiliary_io", "avg_result_size",
    ):
        assert getattr(a, field) == getattr(b, field), field
    bytes_a = (tmp_path / "a" / PAGES_FILENAME).read_bytes()
    bytes_b = (tmp_path / "b" / PAGES_FILENAME).read_bytes()
    assert bytes_a == bytes_b, "the durable image must be deterministic"
    assert os.path.getsize(tmp_path / "a" / PAGES_FILENAME) > 0


def test_durable_run_matches_simulated_io(tmp_path):
    """Durability (and this PR's retry plumbing) adds zero index I/O."""
    workload = _workload()
    simulated = run_workload(TreeAdapter("sim", CONFIG), workload)
    durable = run_workload(
        TreeAdapter("dur", CONFIG), workload,
        durability=str(tmp_path / "store"),
    )
    assert durable.avg_search_io == simulated.avg_search_io
    assert durable.avg_update_io == simulated.avg_update_io
    assert durable.page_count == simulated.page_count
    assert durable.auxiliary_io > 0, "WAL traffic is charged separately"
