"""End-to-end tests for the overload-safe serving frontend."""

import os

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.forest import ForestConfig, PartitionedMovingObjectForest
from repro.core.tree import MovingObjectTree
from repro.obs import MetricsRegistry, Tracer
from repro.serve import (
    REJECT_NEWEST,
    FrontendConfig,
    ServiceFrontend,
)
from repro.storage.faults import FaultInjector
from repro.workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp
from repro.workloads.expiration import FixedPeriod
from repro.workloads.pacing import ArrivalPacer, BurstWindow
from repro.workloads.uniform import UniformParams, generate_uniform_workload

CONFIG = TreeConfig(page_size=512, buffer_pages=8)


def _workload(insertions=200, seed=1, queries_per_insertions=10):
    params = UniformParams(
        target_population=30,
        insertions=insertions,
        update_interval=10.0,
        space=100.0,
        queries_per_insertions=queries_per_insertions,
        seed=seed,
    )
    return generate_uniform_workload(params, FixedPeriod(20.0))


def _oracle_answers(ops):
    """Fault-free replay on a simulated tree: op index -> answer set."""
    clock = SimulationClock()
    tree = MovingObjectTree(CONFIG, clock)
    answers = {}
    for i, op in enumerate(ops):
        clock.advance_to(op.time)
        if isinstance(op, InsertOp):
            tree.insert(op.oid, op.point)
        elif isinstance(op, UpdateOp):
            tree.delete(op.oid, op.old_point)
            tree.insert(op.oid, op.new_point)
        elif isinstance(op, DeleteOp):
            tree.delete(op.oid, op.point)
        elif isinstance(op, QueryOp):
            answers[i] = set(tree.query(op.query))
    return answers


def _durable_frontend(tmp_path, injector_factory, config=None,
                      tree_config=CONFIG, registry=None, tracer=None):
    """A durable tree behind a frontend wired for crash reopen."""
    directory = os.path.join(str(tmp_path), "store")
    incarnations = [injector_factory(0)]
    tree = MovingObjectTree.create_durable(
        directory, tree_config, SimulationClock(), injector=incarnations[0]
    )

    def reopen():
        reopened = MovingObjectTree.open_from(
            directory, tree_config, SimulationClock()
        )
        fresh = injector_factory(len(incarnations))
        incarnations.append(fresh)
        reopened.disk.arm_injector(fresh)
        return reopened, fresh

    frontend = ServiceFrontend(
        tree,
        config or FrontendConfig(),
        registry=registry,
        tracer=tracer,
        injector=incarnations[0],
        reopen=reopen,
    )
    return frontend


def test_no_faults_matches_direct_replay():
    workload = _workload()
    want = _oracle_answers(workload.ops)
    frontend = ServiceFrontend(
        MovingObjectTree(CONFIG, SimulationClock())
    )
    report = frontend.run(workload.ops)
    assert report.admitted == len(workload.ops)
    assert report.trips == 0 and report.retries == 0
    assert report.shed_queries == 0 and report.shed_writes == 0
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert got == want


def test_no_faults_forest_matches_direct_replay():
    workload = _workload()
    want = _oracle_answers(workload.ops)
    forest = PartitionedMovingObjectForest(
        ForestConfig(tree=CONFIG, partitions=2)
    )
    report = ServiceFrontend(forest).run(workload.ops)
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert got == want


def test_transient_write_fault_is_retried(tmp_path):
    workload = _workload()
    want = _oracle_answers(workload.ops)
    frontend = _durable_frontend(
        tmp_path,
        lambda inc: FaultInjector(transient_writes={40}),
    )
    report = frontend.run(workload.ops)
    frontend.index.close()
    assert report.retries >= 1
    assert report.retry_successes >= 1
    assert report.trips == 0
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert got == want


def test_transient_read_fault_is_retried(tmp_path):
    workload = _workload()
    want = _oracle_answers(workload.ops)
    frontend = _durable_frontend(
        tmp_path,
        # Guarded reads are only counted while a query executes; a tiny
        # buffer pool forces queries onto the physical read path.
        lambda inc: FaultInjector(transient_reads={1}),
        tree_config=TreeConfig(page_size=512, buffer_pages=2),
    )
    report = frontend.run(workload.ops)
    frontend.index.close()
    assert report.retries >= 1
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert got == want


def test_fault_burst_trips_degrades_and_recovers(tmp_path):
    workload = _workload(insertions=300)
    want = _oracle_answers(workload.ops)
    frontend = _durable_frontend(
        tmp_path,
        lambda inc: FaultInjector(
            transient_writes={400, 401, 402, 403, 404}
        ),
        config=FrontendConfig(failure_threshold=3, cooldown=3.0),
    )
    report = frontend.run(workload.ops)
    frontend.index.close()
    assert report.trips == 1
    assert report.recoveries == 1
    assert report.degraded_answers >= 1
    assert report.backlog_enqueued >= 1
    assert report.backlog_replayed == report.backlog_enqueued
    assert report.backlog_remaining == 0
    # Every fresh answer — including all post-recovery ones — is exact.
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert all(got[i] == want[i] for i in got)
    # Degraded answers carry their staleness and snapshot provenance.
    degraded = [o for o in report.outcomes if o.status == "degraded"]
    assert degraded and all(o.staleness >= 0.0 for o in degraded)


def test_kill_and_recovery_preserve_answers(tmp_path):
    workload = _workload(insertions=300)
    want = _oracle_answers(workload.ops)

    def injectors(incarnation):
        if incarnation == 0:
            return FaultInjector(crash_at_write=500, mode="kill")
        return FaultInjector()

    frontend = _durable_frontend(tmp_path, injectors)
    report = frontend.run(workload.ops)
    frontend.index.close()
    assert report.kills == 1 and report.reopens == 1
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert got == want, "recovery plus redo must reproduce every answer"


def test_overload_sheds_and_times_out():
    workload = _workload(insertions=400, queries_per_insertions=5)
    burst = BurstWindow(50.0, 90.0, 50.0)
    frontend = ServiceFrontend(
        MovingObjectTree(CONFIG, SimulationClock()),
        FrontendConfig(queue_capacity=16, service_time=0.05,
                       query_deadline=2.0),
    )
    report = frontend.run(workload.ops, pacer=ArrivalPacer([burst]))
    assert report.shed_queries + report.deadline_timeouts > 0
    # Shed and timed-out queries still get recorded outcomes.
    statuses = {o.status for o in report.outcomes}
    assert statuses & {"shed", "timeout"}


def test_reject_newest_policy_sheds_arrivals():
    workload = _workload(insertions=400, queries_per_insertions=5)
    burst = BurstWindow(50.0, 90.0, 50.0)
    frontend = ServiceFrontend(
        MovingObjectTree(CONFIG, SimulationClock()),
        FrontendConfig(queue_capacity=8, service_time=0.05,
                       shed_policy=REJECT_NEWEST),
    )
    report = frontend.run(workload.ops, pacer=ArrivalPacer([burst]))
    assert report.shed_queries + report.shed_writes > 0


def test_observability_counters_mirror_report(tmp_path):
    workload = _workload()
    registry = MetricsRegistry()
    tracer = Tracer()
    frontend = _durable_frontend(
        tmp_path,
        lambda inc: FaultInjector(transient_writes={40}),
        registry=registry, tracer=tracer,
    )
    report = frontend.run(workload.ops)
    frontend.index.close()
    assert registry.value("serve.admitted") == report.admitted
    assert registry.value("serve.retries") == report.retries == 1
    depth = registry.get("serve.queue_depth")
    assert depth is not None and depth.count == len(workload.ops)
    latency = registry.get("serve.retry_latency")
    assert latency is not None and latency.count == report.retries
    assert tracer.spans("serve.retry")


def test_run_rejects_mismatched_arrivals():
    workload = _workload(insertions=50)
    frontend = ServiceFrontend(MovingObjectTree(CONFIG, SimulationClock()))
    with pytest.raises(ValueError):
        frontend.run(workload.ops, arrivals=[0.0])


def test_batched_serving_matches_direct_replay():
    workload = _workload()
    want = _oracle_answers(workload.ops)
    frontend = ServiceFrontend(
        MovingObjectTree(CONFIG, SimulationClock()),
        FrontendConfig(batch_queries=8),
    )
    report = frontend.run(workload.ops)
    assert report.admitted == len(workload.ops)
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert got == want
    assert report.served_queries == len(want)


def test_batched_serving_times_out_per_request():
    """Deadlines stay per-request inside a batch: expired ones time
    out individually while a later-arriving batchmate is still served."""
    from repro.geometry.queries import TimesliceQuery
    from repro.geometry.rect import Rect
    from repro.workloads.base import QueryOp

    query = TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), 1.0)
    ops = [QueryOp(0.0, query) for _ in range(9)]
    # Eight queries arrive at once, the ninth at t=1.5.  One second of
    # service, a two-second relative deadline, batches of three: the
    # head query is served alone at t=0, the next three batch at t=1,
    # and everything else reaches the server at t=2 — past every t=0
    # deadline but within the late arrival's.
    arrivals = [0.0] * 8 + [1.5]
    report = ServiceFrontend(
        MovingObjectTree(CONFIG, SimulationClock()),
        FrontendConfig(queue_capacity=16, service_time=1.0,
                       query_deadline=2.0, batch_queries=3,
                       failure_threshold=10),
    ).run(ops, arrivals=arrivals)
    statuses = [o.status for o in report.outcomes]
    assert statuses == ["ok"] * 4 + ["timeout"] * 4 + ["ok"]
    assert report.deadline_timeouts == 4
    assert report.served_queries == 5


def test_batched_serving_with_transient_faults_matches_oracle(tmp_path):
    workload = _workload()
    want = _oracle_answers(workload.ops)
    frontend = _durable_frontend(
        tmp_path,
        # Read faults land mid-batch; the frontend falls back to the
        # sequential retry path without losing any answer.
        lambda inc: FaultInjector(transient_reads={1, 20}),
        config=FrontendConfig(batch_queries=8),
        tree_config=TreeConfig(page_size=512, buffer_pages=2),
    )
    report = frontend.run(workload.ops)
    frontend.index.close()
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    for index in got:
        assert got[index] == want[index]
    assert set(want) == set(got)


def test_retried_write_commit_is_not_applied_twice(tmp_path):
    from repro.geometry.kinematics import MovingPoint
    from repro.geometry.queries import TimesliceQuery
    from repro.geometry.rect import Rect

    def inserts():
        return [
            InsertOp(
                float(i + 1), i,
                MovingPoint((7.0 * i + 2.0, 50.0), (0.0, 0.0),
                            float(i + 1), 1000.0),
            )
            for i in range(12)
        ]

    def ops():
        return inserts() + [QueryOp(
            13.0, TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), 13.0),
        )]

    # Calibration pass: count the physical writes of a fault-free run
    # of the inserts alone, so the transient can be aimed at the last
    # insert's commit.  The run's trailing maintenance writes retry
    # silently (no report.retries), so search downward for the highest
    # index whose retry the serving path actually handles.
    probe = _durable_frontend(
        os.path.join(str(tmp_path), "probe"), lambda inc: FaultInjector()
    )
    probe.run(inserts())
    total_writes = probe._injector.writes
    probe.index.close()

    report = None
    for attempt, index in enumerate(
        range(total_writes, max(total_writes - 8, 0), -1)
    ):
        frontend = _durable_frontend(
            os.path.join(str(tmp_path), f"real-{attempt}"),
            # The fault fires mid-commit of an insert: the entry is
            # already in the in-memory tree with its commit pending.
            # The breaker never trips, so the same request's retry
            # loop must land the commit without re-driving the atom.
            lambda inc, index=index: FaultInjector(
                transient_writes={index}
            ),
            config=FrontendConfig(failure_threshold=50),
        )
        report = frontend.run(ops())
        frontend.index.close()
        if report.retries:
            break
    assert report is not None and report.retries == 1
    assert report.retry_successes == 1 and report.trips == 0
    (outcome,) = [o for o in report.outcomes if o.status == "ok"
                  and o.answer is not None]
    # A retry that re-drove the whole atom would insert the faulted
    # entry twice — a duplicate oid that set-based comparisons
    # silently collapse, so compare the full multiset.
    assert sorted(outcome.answer) == list(range(12))


def test_kill_fails_over_to_replica_instead_of_reopening(tmp_path):
    from repro.replication import (
        Replica,
        ReplicaLink,
        ShippingChannel,
        WalShipper,
    )

    workload = _workload(insertions=300)
    want = _oracle_answers(workload.ops)
    directory = os.path.join(str(tmp_path), "store")
    injector = FaultInjector(crash_at_write=500, mode="kill")
    tree = MovingObjectTree.create_durable(
        directory, CONFIG, SimulationClock(), injector=injector
    )
    shipper = WalShipper(directory)
    replica = Replica.bootstrap(
        tree.disk, shipper, os.path.join(str(tmp_path), "replica-0")
    )
    channel = ShippingChannel(shipper)
    followers = [replica]

    def reseed(promoted):
        fresh_shipper = WalShipper(promoted.disk.directory)
        fresh = Replica.bootstrap(
            promoted.disk, fresh_shipper,
            os.path.join(str(tmp_path), f"replica-{len(followers)}"),
        )
        followers.append(fresh)
        return ShippingChannel(fresh_shipper), fresh, None

    def on_promote(promoted):
        clean = FaultInjector()
        promoted.disk.arm_injector(clean)
        return clean

    link = ReplicaLink(
        channel, replica,
        promote_config=CONFIG, poll_every=4,
        reseed=reseed, on_promote=on_promote,
    )
    frontend = ServiceFrontend(
        tree, FrontendConfig(), injector=injector, replication=link
    )
    report = frontend.run(workload.ops)
    frontend.index.close()
    for follower in followers:
        follower.close()
    # Failover wins over reopen: the follower was promoted in place and
    # the dead store was never resurrected.
    assert report.kills == 1
    assert report.promotions == 1
    assert report.reopens == 0
    got = {o.index: set(o.answer) for o in report.outcomes
           if o.status == "ok"}
    assert got == want, "failover plus redo must reproduce every answer"
