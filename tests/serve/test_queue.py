"""Tests for the bounded admission queue and its shedding policies."""

import pytest

from repro.geometry import Rect, TimesliceQuery
from repro.geometry.kinematics import MovingPoint
from repro.serve.queue import (
    REJECT_NEWEST,
    REJECT_OLDEST,
    SHED_QUERIES_FIRST,
    AdmissionQueue,
    Request,
)
from repro.workloads.base import InsertOp, QueryOp


def _write(i):
    point = MovingPoint((1.0, 1.0), (0.0, 0.0), 0.0, 100.0)
    return Request(i, InsertOp(float(i), i, point), float(i))


def _query(i):
    q = TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), float(i))
    return Request(i, QueryOp(float(i), q), float(i), deadline=float(i) + 5.0)


def test_fifo_below_capacity():
    queue = AdmissionQueue(4, REJECT_NEWEST)
    for i in range(3):
        assert queue.offer(_write(i)) is None
    assert len(queue) == 3
    assert queue.peek().index == 0
    assert [queue.pop().index for _ in range(3)] == [0, 1, 2]


def test_reject_newest_sheds_the_arrival():
    queue = AdmissionQueue(2, REJECT_NEWEST)
    queue.offer(_write(0))
    queue.offer(_query(1))
    shed = queue.offer(_write(2))
    assert shed is not None and shed.index == 2
    assert [queue.pop().index for _ in range(2)] == [0, 1]


def test_reject_oldest_evicts_the_head():
    queue = AdmissionQueue(2, REJECT_OLDEST)
    queue.offer(_write(0))
    queue.offer(_write(1))
    shed = queue.offer(_write(2))
    assert shed is not None and shed.index == 0
    assert [queue.pop().index for _ in range(2)] == [1, 2]


def test_shed_queries_first_evicts_oldest_queued_query():
    queue = AdmissionQueue(3, SHED_QUERIES_FIRST)
    queue.offer(_write(0))
    queue.offer(_query(1))
    queue.offer(_query(2))
    shed = queue.offer(_write(3))
    assert shed is not None and shed.index == 1
    assert [queue.pop().index for _ in range(3)] == [0, 2, 3]


def test_shed_queries_first_rejects_write_only_as_last_resort():
    queue = AdmissionQueue(2, SHED_QUERIES_FIRST)
    queue.offer(_write(0))
    queue.offer(_write(1))
    # A query arrival into an all-write queue sheds the query itself.
    shed = queue.offer(_query(2))
    assert shed is not None and shed.index == 2 and shed.is_query
    # A write arrival into an all-write queue sheds the arriving write.
    shed = queue.offer(_write(3))
    assert shed is not None and shed.index == 3 and not shed.is_query
    assert [queue.pop().index for _ in range(2)] == [0, 1]


def test_request_kind_flag():
    assert not _write(0).is_query
    assert _query(0).is_query
    assert _write(0).deadline == float("inf")


def test_validation():
    with pytest.raises(ValueError):
        AdmissionQueue(0, REJECT_NEWEST)
    with pytest.raises(ValueError):
        AdmissionQueue(4, "drop-everything")
