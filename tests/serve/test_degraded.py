"""Tests for the snapshot-plus-overlay degraded reader."""

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.tree import MovingObjectTree
from repro.geometry import Rect, TimesliceQuery
from repro.geometry.kinematics import MovingPoint
from repro.serve.degraded import DegradedReader


def _point(x, y, vx=0.0, vy=0.0, t_ref=0.0, t_exp=1000.0):
    return MovingPoint((x, y), (vx, vy), t_ref, t_exp)


def _tree_with(entries):
    tree = MovingObjectTree(TreeConfig(page_size=512), SimulationClock())
    for oid, point in entries:
        tree.insert(oid, point)
    return tree


def _ts(lo, hi, t):
    return TimesliceQuery(Rect(lo, hi), t)


def test_snapshot_answers_without_overlay():
    tree = _tree_with([(1, _point(10, 10)), (2, _point(80, 80))])
    reader = DegradedReader(tree.snapshot(), snapshot_op_index=5)
    answer = reader.query(_ts((0, 0), (20, 20), 1.0), now=3.0)
    assert answer.oids == (1,)
    assert answer.staleness == pytest.approx(3.0)
    assert answer.snapshot_op_index == 5
    assert answer.overlay_oids == ()
    assert 1 in answer.evidence


def test_overlay_insert_adds_and_is_flagged():
    tree = _tree_with([(1, _point(10, 10))])
    reader = DegradedReader(tree.snapshot(), 0)
    reader.apply(("insert", 2.0, 7, _point(15, 15)))
    answer = reader.query(_ts((0, 0), (20, 20), 2.0), now=2.0)
    assert answer.oids == (1, 7)
    assert answer.overlay_oids == (7,)


def test_overlay_delete_hides_snapshot_entry():
    tree = _tree_with([(1, _point(10, 10)), (2, _point(12, 12))])
    reader = DegradedReader(tree.snapshot(), 0)
    reader.apply(("delete", 2.0, 1, _point(10, 10)))
    answer = reader.query(_ts((0, 0), (20, 20), 2.0), now=2.0)
    assert answer.oids == (2,)


def test_overlay_update_shadows_old_position():
    tree = _tree_with([(1, _point(10, 10))])
    reader = DegradedReader(tree.snapshot(), 0)
    # An update is delete-then-insert; the new position is far away.
    reader.apply(("delete", 2.0, 1, _point(10, 10)))
    reader.apply(("insert", 2.0, 1, _point(90, 90)))
    near = reader.query(_ts((0, 0), (20, 20), 2.0), now=2.0)
    far = reader.query(_ts((80, 80), (100, 100), 2.0), now=2.0)
    assert near.oids == ()
    assert far.oids == (1,)
    assert far.overlay_oids == (1,)


def test_expired_entries_never_match():
    tree = _tree_with([(1, _point(10, 10, t_exp=5.0))])
    reader = DegradedReader(tree.snapshot(), 0)
    # Query strictly after the entry's expiration: clipped out.
    answer = reader.query(_ts((0, 0), (20, 20), 6.0), now=6.0)
    assert answer.oids == ()


def test_snapshot_is_isolated_from_later_mutations():
    tree = _tree_with([(1, _point(10, 10))])
    reader = DegradedReader(tree.snapshot(), 0)
    tree.delete(1, _point(10, 10))
    tree.insert(2, _point(11, 11))
    answer = reader.query(_ts((0, 0), (20, 20), 1.0), now=1.0)
    assert answer.oids == (1,), "snapshot must not see post-cut mutations"


def test_query_atoms_cannot_be_overlaid():
    tree = _tree_with([(1, _point(10, 10))])
    reader = DegradedReader(tree.snapshot(), 0)
    with pytest.raises(ValueError):
        reader.apply(("query", 1.0, 0, None))
