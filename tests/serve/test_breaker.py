"""Tests for the circuit breaker state machine and health monitor."""

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    HealthMonitor,
)


def test_trips_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0)
    assert not breaker.record_failure(1.0)
    assert not breaker.record_failure(1.1)
    assert breaker.record_failure(1.2)
    assert breaker.state == OPEN
    assert breaker.trips == 1
    assert breaker.open_until == pytest.approx(6.2)


def test_success_resets_the_failure_run():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    breaker.record_success()
    assert not breaker.record_failure(0.0)
    assert breaker.state == CLOSED


def test_probe_cycle_success():
    breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0)
    breaker.record_failure(10.0)
    assert breaker.state == OPEN
    assert not breaker.ready_to_probe(11.0)
    assert breaker.ready_to_probe(12.0)
    breaker.begin_probe()
    assert breaker.state == HALF_OPEN
    breaker.probe_succeeded()
    assert breaker.state == CLOSED
    assert breaker.recoveries == 1
    assert breaker.consecutive_failures == 0


def test_probe_failure_reopens_with_fresh_cooldown():
    breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0)
    breaker.record_failure(10.0)
    breaker.begin_probe()
    breaker.probe_failed(12.5)
    assert breaker.state == OPEN
    assert breaker.probe_failures == 1
    assert breaker.open_until == pytest.approx(14.5)
    assert breaker.recoveries == 0


def test_manual_trip_is_idempotent_while_open():
    breaker = CircuitBreaker(failure_threshold=5, cooldown=1.0)
    assert breaker.trip(3.0)
    assert not breaker.trip(3.5), "already open"
    assert breaker.trips == 1


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=-1.0)
    with pytest.raises(ValueError):
        HealthMonitor(window=0)


def test_health_monitor_window():
    monitor = HealthMonitor(window=4)
    assert monitor.error_rate == 0.0
    for ok in (True, False, False, True):
        monitor.record(ok)
    assert monitor.error_rate == pytest.approx(0.5)
    assert monitor.sample_count == 4
    # Window slides: the oldest success falls out.
    monitor.record(False)
    assert monitor.error_rate == pytest.approx(0.75)
