"""Tests for the retry policy's backoff ladder."""

import random

import pytest

from repro.serve.retry import RetryPolicy


def test_backoff_grows_geometrically_without_jitter():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                         jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay(a, rng) for a in (1, 2, 3, 4)]
    assert delays == [0.1, 0.2, 0.4, 0.8]


def test_backoff_caps_at_max_delay():
    policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.5,
                         jitter=0.0)
    rng = random.Random(0)
    assert policy.delay(5, rng) == 2.5


def test_jitter_is_bounded_and_seeded():
    policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                         jitter=0.25)
    a = [policy.delay(1, random.Random(7)) for _ in range(5)]
    assert len(set(a)) == 1, "same seed must give the same jitter"
    for _ in range(50):
        d = policy.delay(1, random.Random(_))
        assert 0.75 <= d <= 1.25


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(budget=-1)
    with pytest.raises(ValueError):
        RetryPolicy().delay(0, random.Random(0))
