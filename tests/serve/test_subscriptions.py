"""Tests for standing-query subscriptions: the delta-stream invariant.

The contract under test (DESIGN.md §13): at every notification point,
for every subscription, ``answer(sid)`` equals the naive re-evaluation
of its region over the live population — and the delta stream replays
from an empty set to exactly that answer.  The tests drive the index
with randomized insert/delete/expiration streams and check both sides
at every step, then exercise the edges: late registration, bounded
queues, lag, resync, idempotent redelivery, and frontend integration.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.tree import MovingObjectTree
from repro.geometry.intersection import region_matches_point
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.obs import MetricsRegistry
from repro.serve import (
    FrontendConfig,
    ServiceFrontend,
    SubscriptionIndex,
    subscription_slo,
)
from repro.workloads.base import DeleteOp, InsertOp, QueryOp
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload

SPACE = 100.0


def random_rect(rng, span=30.0):
    x, y = rng.uniform(0, 80), rng.uniform(0, 80)
    return Rect((x, y), (x + rng.uniform(5, span), y + rng.uniform(5, span)))


def random_query(rng, horizon=40.0):
    kind = rng.randrange(3)
    t1 = rng.uniform(0.0, horizon)
    if kind == 0:
        return TimesliceQuery(random_rect(rng), t1)
    if kind == 1:
        return WindowQuery(random_rect(rng), t1, t1 + rng.uniform(0, 20))
    return MovingQuery(
        random_rect(rng), random_rect(rng), t1, t1 + rng.uniform(1, 20)
    )


def random_point(rng, now, infinite_probability=0.3, life=15.0):
    t_exp = (
        math.inf if rng.random() < infinite_probability
        else now + rng.uniform(0.5, life)
    )
    return MovingPoint(
        (rng.uniform(0, SPACE), rng.uniform(0, SPACE)),
        (rng.uniform(-3, 3), rng.uniform(-3, 3)),
        now,
        t_exp,
    )


def naive_answer(subs, sid):
    """Re-evaluate one subscription from scratch over the live set."""
    region = subs._subs[sid].region
    return tuple(sorted(
        oid for point, oid in subs.live_entries()
        if not point.t_exp < subs.now
        and region_matches_point(region, point)
    ))


# -- the invariant, checked at every notification point ----------------------


@pytest.mark.parametrize("seed", [3, 17])
def test_invariant_and_replay_hold_at_every_step(seed):
    rng = random.Random(seed)
    subs = SubscriptionIndex(space=SPACE, cells=8)
    sids = [subs.register(random_query(rng)) for _ in range(25)]
    replayed = {sid: set() for sid in sids}
    live = set()
    now = 0.0
    for step in range(400):
        now += rng.uniform(0.0, 0.3)
        subs.advance_to(now)
        if rng.random() < 0.55 or not live:
            oid = rng.randrange(80)
            subs.notify_insert(oid, random_point(rng, now))
            live.add(oid)
        else:
            oid = rng.choice(sorted(live))
            subs.notify_delete(oid)
            live.discard(oid)
        for sid in sids:
            assert subs.answer(sid) == naive_answer(subs, sid)
        for sid in sids:
            for delta in subs.poll(sid):
                replayed[sid] |= set(delta.added)
                replayed[sid] -= set(delta.removed)
            assert tuple(sorted(replayed[sid])) == subs.answer(sid)
    assert subs.dropped == 0
    assert subs.adds > 0 and subs.removes > 0


def test_expiration_sweep_emits_remove_deltas():
    subs = SubscriptionIndex(space=SPACE, cells=4)
    sid = subs.register(
        WindowQuery(Rect((0.0, 0.0), (SPACE, SPACE)), 0.0, 1000.0)
    )
    subs.notify_insert(1, MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, 5.0))
    subs.notify_insert(2, MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0,
                                      math.inf))
    assert subs.answer(sid) == (1, 2)
    # t_exp == now is still live (the paper's closed-interval semantics);
    # strictly past it the sweep must evict and notify.
    subs.advance_to(5.0)
    assert subs.answer(sid) == (1, 2)
    subs.advance_to(5.1)
    assert subs.answer(sid) == (2,)
    assert subs.expirations == 1
    replay = set()
    for delta in subs.poll(sid):
        replay |= set(delta.added)
        replay -= set(delta.removed)
    assert replay == {2}


def test_update_reinsert_keeps_membership_consistent():
    subs = SubscriptionIndex(space=SPACE, cells=4)
    sid = subs.register(TimesliceQuery(Rect((40.0, 40.0), (60.0, 60.0)),
                                       10.0))
    inside = MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, math.inf)
    outside = MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, math.inf)
    subs.notify_insert(7, inside)
    assert subs.answer(sid) == (7,)
    # A position report that moves the object out must remove it...
    subs.notify_insert(7, outside)
    assert subs.answer(sid) == ()
    # ...and one that moves it back must re-add it, all under one oid.
    subs.notify_insert(7, inside)
    assert subs.answer(sid) == (7,)
    subs.notify_delete(7)
    assert subs.answer(sid) == ()


def test_redelivered_notification_is_idempotent():
    """At-least-once drivers (crash redo) must not duplicate deltas."""
    subs = SubscriptionIndex(space=SPACE, cells=4)
    sid = subs.register(
        WindowQuery(Rect((0.0, 0.0), (SPACE, SPACE)), 0.0, 1000.0)
    )
    point = MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, math.inf)
    subs.notify_insert(3, point)
    subs.notify_insert(3, point)  # redo replays the same atom
    deltas = subs.poll(sid)
    assert len(deltas) == 1
    assert deltas[0].added == (3,)
    subs.notify_delete(3)
    subs.notify_delete(3)
    deltas = subs.poll(sid)
    assert len(deltas) == 1
    assert deltas[0].removed == (3,)


def test_late_registration_emits_initial_delta():
    subs = SubscriptionIndex(space=SPACE, cells=4)
    for oid in range(5):
        subs.notify_insert(
            oid, MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, math.inf)
        )
    sid = subs.register(
        WindowQuery(Rect((0.0, 0.0), (SPACE, SPACE)), 0.0, 1000.0)
    )
    deltas = subs.poll(sid)
    assert len(deltas) == 1
    assert deltas[0].added == (0, 1, 2, 3, 4)
    assert subs.answer(sid) == (0, 1, 2, 3, 4)


def test_unregister_stops_deltas_and_shrinks_gauge():
    registry = MetricsRegistry()
    subs = SubscriptionIndex(space=SPACE, cells=4, registry=registry)
    sid = subs.register(
        WindowQuery(Rect((0.0, 0.0), (SPACE, SPACE)), 0.0, 1000.0)
    )
    assert registry.value("subs.standing") == 1
    subs.unregister(sid)
    assert registry.value("subs.standing") == 0
    subs.notify_insert(
        1, MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, math.inf)
    )
    with pytest.raises(KeyError):
        subs.poll(sid)


def test_bounded_queue_lags_then_resyncs():
    subs = SubscriptionIndex(space=SPACE, cells=4, max_pending=2)
    sid = subs.register(
        WindowQuery(Rect((0.0, 0.0), (SPACE, SPACE)), 0.0, 1000.0)
    )
    for oid in range(10):
        subs.notify_insert(
            oid, MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, math.inf)
        )
    assert subs.is_lagged(sid)
    assert subs.dropped > 0
    # A lagged consumer cannot trust its replayed set; resync hands it
    # the authoritative answer and re-arms the queue.
    assert subs.resync(sid) == tuple(range(10))
    assert not subs.is_lagged(sid)
    subs.notify_delete(0)
    deltas = subs.poll(sid)
    assert deltas[-1].removed == (0,)


def test_out_of_space_coordinates_are_handled():
    # Clamped grid cells are conservative, never wrong.
    subs = SubscriptionIndex(space=SPACE, cells=4)
    sid = subs.register(TimesliceQuery(Rect((-50.0, -50.0), (0.0, 0.0)),
                                       1.0))
    subs.notify_insert(
        1, MovingPoint((-25.0, -25.0), (0.0, 0.0), 0.0, math.inf)
    )
    subs.notify_insert(
        2, MovingPoint((500.0, 500.0), (0.0, 0.0), 0.0, math.inf)
    )
    assert subs.answer(sid) == (1,)


def test_subscription_slo_shape():
    slo = subscription_slo(target=0.999)
    assert slo.good == ("subs.delivered",)
    assert slo.bad == ("subs.dropped",)
    assert slo.target == 0.999


# -- property: random streams, all three query types -------------------------


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=20, max_value=80),
)
def test_property_invariant_over_random_streams(seed, n_subs, n_steps):
    rng = random.Random(seed)
    subs = SubscriptionIndex(space=SPACE, cells=rng.choice((1, 4, 16)))
    sids = [subs.register(random_query(rng)) for _ in range(n_subs)]
    live = set()
    now = 0.0
    for _ in range(n_steps):
        now += rng.uniform(0.0, 1.0)
        subs.advance_to(now)
        if rng.random() < 0.6 or not live:
            oid = rng.randrange(30)
            subs.notify_insert(
                oid, random_point(rng, now, infinite_probability=0.2)
            )
            live.add(oid)
        else:
            oid = rng.choice(sorted(live))
            subs.notify_delete(oid)
            live.discard(oid)
    for sid in sids:
        assert subs.answer(sid) == naive_answer(subs, sid)


# -- frontend integration ----------------------------------------------------


def _workload(insertions=300, seed=5):
    params = UniformParams(
        target_population=40,
        insertions=insertions,
        update_interval=10.0,
        space=SPACE,
        queries_per_insertions=5,
        seed=seed,
    )
    return generate_uniform_workload(params, FixedPeriod(20.0))


def test_frontend_notifies_subscriptions_and_tracks_slo():
    workload = _workload()
    rng = random.Random(9)
    registry = MetricsRegistry()
    subs = SubscriptionIndex(
        space=SPACE, cells=8, max_pending=1 << 30, registry=registry
    )
    duration = workload.ops[-1].time
    sids = [
        subs.register(random_query(rng, horizon=duration))
        for _ in range(20)
    ]
    clock = SimulationClock()
    tree = MovingObjectTree(
        TreeConfig(page_size=512, buffer_pages=8), clock
    )
    frontend = ServiceFrontend(
        tree, FrontendConfig(), registry=registry, subscriptions=subs,
    )
    report = frontend.run(workload.ops)
    assert report.served_writes > 0
    # Mirror agrees with the index: same expiration-visible live set.
    mirrored = {
        oid for point, oid in subs.live_entries()
        if not point.t_exp < subs.now
    }
    indexed = {
        oid for point, oid in tree.snapshot().leaf_entries()
        if not point.t_exp < subs.now
    }
    assert mirrored == indexed
    # Every subscription's delta stream replays to its invariant answer.
    for sid in sids:
        replay = set()
        for delta in subs.poll(sid):
            replay |= set(delta.added)
            replay -= set(delta.removed)
        assert tuple(sorted(replay)) == subs.answer(sid)
        assert subs.answer(sid) == naive_answer(subs, sid)
    # The delivery SLO is wired into the frontend's tracker.
    slos = frontend.slo_status()
    assert "subscription_delivery" in slos
    assert slos["subscription_delivery"]["met"] is True
