"""The public API surface: everything README/examples rely on."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


@pytest.mark.parametrize("module", [
    "repro.storage",
    "repro.geometry",
    "repro.rstar",
    "repro.btree",
    "repro.core",
    "repro.workloads",
    "repro.experiments",
    "repro.serve",
    "repro.obs",
    "repro.shard",
    "repro.replication",
])
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name} missing"


def test_readme_quickstart_snippet():
    from repro import (
        MovingObjectTree,
        MovingPoint,
        Rect,
        SimulationClock,
        TimesliceQuery,
        rexp_config,
    )

    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(), clock)
    tree.insert(
        1,
        MovingPoint(pos=(100.0, 100.0), vel=(1.0, 0.0), t_ref=0.0, t_exp=120.0),
    )
    hits = tree.query(
        TimesliceQuery(Rect((90.0, 90.0), (120.0, 110.0)), t=10.0)
    )
    assert hits == [1]


def test_default_tree_constructs_without_arguments():
    tree = repro.MovingObjectTree()
    assert tree.page_count == 1
    assert tree.leaf_capacity == 170       # paper's 4 KB leaf fan-out
    assert tree.internal_capacity == 113   # w/o stored TPBR expiry


def test_docstrings_on_public_entry_points():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if name.startswith("__") or isinstance(obj, str):
            continue
        assert getattr(obj, "__doc__", None), f"repro.{name} lacks a docstring"
