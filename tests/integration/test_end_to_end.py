"""End-to-end integration: workloads replayed against every architecture.

These use a micro scale (hundreds of objects) so the whole file runs in
well under a minute, but they exercise the complete pipeline: workload
generation -> adapters -> runner -> audits, with oracle verification of
every query answer.
"""

import pytest

from repro.core.presets import rexp_config, tpr_config
from repro.experiments.adapters import ScheduledAdapter, TreeAdapter
from repro.experiments.runner import run_workload
from repro.workloads.expiration import FixedDistance, FixedPeriod
from repro.workloads.network import NetworkParams, generate_network_workload
from repro.workloads.uniform import UniformParams, generate_uniform_workload

PAGE = 512
BUFFER = 4


@pytest.fixture(scope="module")
def network_workload():
    params = NetworkParams(
        target_population=150,
        insertions=2500,
        update_interval=20.0,
        seed=11,
    )
    return generate_network_workload(params, FixedPeriod(40.0))


@pytest.fixture(scope="module")
def uniform_workload():
    params = UniformParams(
        target_population=150,
        insertions=2500,
        update_interval=20.0,
        seed=12,
    )
    return generate_uniform_workload(params, FixedDistance(60.0))


def _run(adapter, workload):
    result = run_workload(adapter, workload, verify=True)
    assert result.oracle_mismatches == 0, (
        f"{adapter.name}: {result.oracle_mismatches} query answers "
        "diverged from the brute-force oracle"
    )
    return result


def test_rexp_tree_answers_exactly(network_workload):
    adapter = TreeAdapter(
        "Rexp", rexp_config(page_size=PAGE, buffer_pages=BUFFER)
    )
    result = _run(adapter, network_workload)
    assert result.search_ops == network_workload.query_count
    adapter.tree.check_invariants()
    # Lazy purging keeps the expired fraction small (Section 5.4).
    assert result.expired_fraction < 0.25


def test_tpr_tree_superset_answers(network_workload):
    adapter = TreeAdapter(
        "TPR", tpr_config(page_size=PAGE, buffer_pages=BUFFER)
    )
    result = _run(adapter, network_workload)
    adapter.tree.check_invariants()
    assert result.expired_fraction == 0.0  # TPR never records expiry


def test_scheduled_rexp_answers_exactly(network_workload):
    adapter = ScheduledAdapter(
        "Rexp+sched",
        rexp_config(page_size=PAGE, buffer_pages=BUFFER),
        queue_buffer_pages=4,
    )
    result = _run(adapter, network_workload)
    adapter.tree.check_invariants()
    # Eager deletion prevents accumulation entirely.
    assert adapter.index.pending_events <= result.leaf_entries + 1


def test_scheduled_tpr_cleans_up(network_workload):
    adapter = ScheduledAdapter(
        "TPR+sched",
        tpr_config(page_size=PAGE, buffer_pages=BUFFER),
        queue_buffer_pages=4,
    )
    result = _run(adapter, network_workload)
    adapter.tree.check_invariants()
    # Scheduled deletions keep the TPR-tree from growing without bound.
    assert result.leaf_entries <= 2 * result.params["population"]


def test_uniform_workload_all_architectures(uniform_workload):
    for name, config in (
        ("Rexp", rexp_config(page_size=PAGE, buffer_pages=BUFFER)),
        ("TPR", tpr_config(page_size=PAGE, buffer_pages=BUFFER)),
    ):
        adapter = TreeAdapter(name, config)
        _run(adapter, uniform_workload)
        adapter.tree.check_invariants()


def test_rexp_beats_tpr_on_search_io(network_workload):
    """The headline claim, at micro scale: expiring-aware indexing wins."""
    rexp = TreeAdapter(
        "Rexp", rexp_config(page_size=PAGE, buffer_pages=BUFFER)
    )
    tpr = TreeAdapter("TPR", tpr_config(page_size=PAGE, buffer_pages=BUFFER))
    r1 = run_workload(rexp, network_workload)
    r2 = run_workload(tpr, network_workload)
    assert r1.avg_search_io < r2.avg_search_io


def test_deterministic_replay(network_workload):
    a = run_workload(
        TreeAdapter("a", rexp_config(page_size=PAGE, buffer_pages=BUFFER)),
        network_workload,
    )
    b = run_workload(
        TreeAdapter("b", rexp_config(page_size=PAGE, buffer_pages=BUFFER)),
        network_workload,
    )
    assert a.avg_search_io == b.avg_search_io
    assert a.avg_update_io == b.avg_update_io
    assert a.page_count == b.page_count
