"""Every example in examples/ must run cleanly end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, timeout=240):
    env = dict(os.environ, REPRO_EXAMPLE_FAST="1")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


def test_examples_directory_contents():
    names = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "timeslice @ t=10: [1, 3]" in out
    assert "timeslice @ t=20: [1]" in out   # object 3 expired
    assert "index:" in out


def test_location_game():
    out = run_example("location_game.py")
    assert "final leaderboard" in out
    assert "purged itself" in out


def test_traffic_monitor():
    out = run_example("traffic_monitor.py")
    assert "index economics" in out
    assert "x less I/O than the TPR-tree" in out


def test_durability():
    out = run_example("durability.py")
    assert "crashed mid-burst" in out
    assert "commits applied" in out
    assert "reopened index answers identically" in out
    assert "checkpointed and closed" in out


def test_bounding_rectangles():
    out = run_example("bounding_rectangles.py")
    assert "ranking by area integral" in out
    for kind in ("conservative", "static", "update_minimum",
                 "near_optimal", "optimal"):
        assert kind in out


def test_nearest_neighbors():
    out = run_example("nearest_neighbors.py")
    assert "5 nearest to the depot at t=15" in out
    assert "matches the brute-force oracle exactly" in out
    assert "expired ones pruned" in out


def test_standing_queries():
    out = run_example("standing_queries.py")
    assert "registered 2 geofences" in out
    assert "downtown:" in out and "airport:" in out
    assert "0 dropped" in out
