"""Tests for the operation-stream model."""

import pytest

from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect
from repro.workloads.base import (
    DeleteOp,
    InsertOp,
    QueryOp,
    UpdateOp,
    Workload,
)


def p(t=0.0):
    return MovingPoint((0.0, 0.0), (1.0, 1.0), t, t + 10.0)


def q(t=0.0):
    return QueryOp(t, TimesliceQuery(Rect((0.0, 0.0), (1.0, 1.0)), t))


def test_counts():
    w = Workload("w", [
        InsertOp(0.0, 1, p()),
        UpdateOp(1.0, 1, p(), p(1.0)),
        DeleteOp(2.0, 1, p(1.0)),
        q(3.0),
    ])
    assert len(w) == 4
    assert w.insertion_count == 2  # insert + update-insert
    assert w.query_count == 1


def test_validate_accepts_sorted():
    w = Workload("w", [InsertOp(0.0, 1, p()), q(1.0), q(1.0)])
    w.validate()


def test_validate_rejects_unsorted():
    w = Workload("w", [q(2.0), q(1.0)])
    with pytest.raises(ValueError):
        w.validate()


def test_iteration_order():
    ops = [InsertOp(0.0, 1, p()), q(1.0)]
    w = Workload("w", ops)
    assert list(w) == ops
