"""Tests for the uniform workload generator (Section 5.1)."""

import math

import pytest

from repro.workloads.base import InsertOp, UpdateOp
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import (
    UniformParams,
    _bounce,
    generate_uniform_workload,
)


def small_params(**overrides):
    defaults = dict(
        target_population=150, insertions=3000, update_interval=10.0, seed=3
    )
    defaults.update(overrides)
    return UniformParams(**defaults)


def test_counts_and_ordering():
    workload = generate_uniform_workload(small_params())
    workload.validate()
    assert workload.insertion_count == 3000
    assert workload.query_count >= 29


def test_speeds_bounded():
    workload = generate_uniform_workload(small_params(max_speed=3.0))
    for op in workload.ops:
        if isinstance(op, InsertOp):
            p = op.point
        elif isinstance(op, UpdateOp):
            p = op.new_point
        else:
            continue
        assert math.hypot(*p.vel) <= 3.0 + 1e-9


def test_positions_inside_space():
    workload = generate_uniform_workload(small_params())
    for op in workload.ops:
        if isinstance(op, (InsertOp, UpdateOp)):
            p = op.point if isinstance(op, InsertOp) else op.new_point
            assert 0.0 <= p.pos[0] <= 1000.0
            assert 0.0 <= p.pos[1] <= 1000.0


def test_update_gaps_bounded_by_two_ui():
    """Successive update gaps are uniform on (0, 2*UI]."""
    workload = generate_uniform_workload(small_params(update_interval=10.0))
    last_report = {}
    gaps = []
    for op in workload.ops:
        if isinstance(op, InsertOp):
            last_report[op.oid] = op.time
        elif isinstance(op, UpdateOp):
            gaps.append(op.time - last_report[op.oid])
            last_report[op.oid] = op.time
    assert gaps
    assert max(gaps) <= 20.0 + 1e-6
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(10.0, rel=0.2)


def test_bounce_reflects_into_space():
    assert _bounce(-5.0, 100.0)[0] == 5.0
    assert _bounce(105.0, 100.0)[0] == 95.0
    assert _bounce(50.0, 100.0)[0] == 50.0


def test_positions_are_continuous_across_updates():
    """The reported new position equals the old prediction at update time."""
    workload = generate_uniform_workload(small_params())
    for op in workload.ops:
        if not isinstance(op, UpdateOp):
            continue
        predicted = op.old_point.position_at(op.time)
        # Unless a boundary bounce occurred, positions agree.
        for got, want in zip(op.new_point.pos, predicted):
            if 0.0 <= want <= 1000.0:
                assert got == pytest.approx(want, abs=1e-6)


def test_determinism_by_seed():
    a = generate_uniform_workload(small_params(seed=9))
    b = generate_uniform_workload(small_params(seed=9))
    assert a.ops == b.ops
