"""Tests for the Table 1 parameter grid."""

import pytest

from repro.workloads.parameters import (
    PAPER_PARAMETERS,
    parameter,
    querying_window,
)


def test_table_has_four_rows():
    assert [p.name for p in PAPER_PARAMETERS] == ["ExpT", "ExpD", "NewOb", "UI"]


def test_values_match_the_paper():
    assert parameter("ExpT").values == (30.0, 60.0, 120.0, 180.0, 240.0)
    assert parameter("ExpD").values == (45.0, 90.0, 180.0, 270.0, 360.0)
    assert parameter("NewOb").values == (0.0, 0.5, 1.0, 1.5, 2.0)
    assert parameter("UI").values == (30.0, 60.0, 90.0, 120.0)


def test_standard_values_are_in_the_grid():
    for spec in PAPER_PARAMETERS:
        assert spec.standard in spec.values


def test_unknown_parameter_raises():
    with pytest.raises(KeyError):
        parameter("nope")


def test_querying_window_default_is_half_ui():
    assert querying_window(60.0) == 30.0
    assert querying_window(90.0) == 45.0


def test_querying_window_special_case_for_short_expt():
    """Section 5.1: 'Only for workloads with ExpT = 30, W = 15 was used.'"""
    assert querying_window(60.0, expt=30.0) == 15.0
    assert querying_window(60.0, expt=120.0) == 30.0
