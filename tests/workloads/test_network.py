"""Tests for the network-based workload generator (Section 5.1)."""

import math
import random
from collections import defaultdict

import pytest

from repro.workloads.base import InsertOp, UpdateOp
from repro.workloads.expiration import FixedDistance, FixedPeriod
from repro.workloads.network import (
    SPEED_GROUPS,
    NetworkParams,
    RouteNetwork,
    _route_reports,
    generate_network_workload,
    mean_reported_speed,
    network_journey_factory,
)


def small_params(**overrides):
    defaults = dict(
        target_population=200, insertions=3000, update_interval=10.0, seed=7
    )
    defaults.update(overrides)
    return NetworkParams(**defaults)


def test_route_network_has_380_routes():
    params = NetworkParams()
    network = RouteNetwork(params, random.Random(0))
    assert len(network.destinations) == 20
    assert network.route_count == 380


def test_route_reports_speed_profile():
    """Standstill at start, vmax at cruise entry, slowing in decel."""
    reports = list(_route_reports(0.0, (0.0, 0.0), (120.0, 0.0), 2.0, 5.0))
    t0, pos0, vel0, speed0 = reports[0]
    assert t0 == 0.0 and pos0 == (0.0, 0.0)
    assert speed0 == 0.0
    speeds = [r[3] for r in reports]
    assert max(speeds) == pytest.approx(2.0)
    # Positions advance monotonically along the route.
    xs = [r[1][0] for r in reports]
    assert xs == sorted(xs)
    assert all(r[1][1] == 0.0 for r in reports)  # straight horizontal route


def test_route_reports_positions_match_kinematics():
    """Accel over L/6, cruise 2L/3, decel L/6 (the paper's profile)."""
    length, vmax = 120.0, 2.0
    reports = list(_route_reports(0.0, (0.0, 0.0), (length, 0.0), vmax, 1.0))
    t_accel = length / (3.0 * vmax)
    for t, pos, vel, speed in reports:
        if t <= t_accel:
            assert speed == pytest.approx(vmax * t / t_accel)
            assert pos[0] == pytest.approx(0.5 * vmax * t * t / t_accel)
    total = 4.0 * length / (3.0 * vmax)
    assert max(r[0] for r in reports) <= total + 1e-9


def test_report_velocity_is_speed_times_direction():
    reports = list(_route_reports(0.0, (0.0, 0.0), (60.0, 80.0), 1.0, 5.0))
    for _, _, vel, speed in reports:
        assert math.hypot(*vel) == pytest.approx(speed, abs=1e-9)


def test_workload_counts_and_ordering():
    workload = generate_network_workload(small_params())
    workload.validate()
    assert workload.insertion_count == 3000
    # One query per 100 insertions.
    assert workload.query_count == pytest.approx(30, abs=1)


def test_expiration_policy_applied():
    workload = generate_network_workload(
        small_params(), FixedPeriod(20.0)
    )
    for op in workload.ops:
        if isinstance(op, InsertOp):
            assert op.point.t_exp == pytest.approx(op.time + 20.0)
        elif isinstance(op, UpdateOp):
            assert op.new_point.t_exp == pytest.approx(op.time + 20.0)


def test_speed_dependent_expiration():
    workload = generate_network_workload(
        small_params(), FixedDistance(45.0)
    )
    validities = []
    for op in workload.ops:
        if isinstance(op, UpdateOp):
            validities.append(op.new_point.t_exp - op.time)
    assert min(validities) < max(validities)  # speed-dependent spread
    # The fastest group (3 km/min) expires after 45/3 = 15 minutes.
    assert min(validities) == pytest.approx(15.0, rel=0.05)


def test_population_inflated_for_short_expirations():
    """Short ExpT must simulate more objects to keep the index populated."""
    short = generate_network_workload(small_params(), FixedPeriod(5.0))
    long = generate_network_workload(small_params(), FixedPeriod(1000.0))
    assert short.params["population"] > long.params["population"]
    assert long.params["population"] == 200


def test_update_rate_approximates_ui():
    params = small_params(
        target_population=150, insertions=12000, update_interval=30.0
    )
    workload = generate_network_workload(params, FixedPeriod(10000.0))
    duration = workload.ops[-1].time
    per_object_rate = (
        workload.insertion_count / workload.params["population"] / duration
    )
    # Mean inter-report gap within 40% of UI (reports cluster in the
    # acceleration/deceleration stretches, so exact equality is not
    # expected at finite horizons).
    assert 1.0 / per_object_rate == pytest.approx(30.0, rel=0.4)


def test_new_objects_replace_turned_off_ones():
    base = small_params(new_object_fraction=0.0)
    with_new = small_params(new_object_fraction=1.5)
    w0 = generate_network_workload(base)
    w1 = generate_network_workload(with_new)
    first_reports_0 = sum(isinstance(op, InsertOp) for op in w0.ops)
    first_reports_1 = sum(isinstance(op, InsertOp) for op in w1.ops)
    assert first_reports_1 > first_reports_0
    # Roughly NewOb * population replacements appear as extra inserts.
    expected_extra = 1.5 * w1.params["population"]
    assert first_reports_1 - first_reports_0 == pytest.approx(
        expected_extra, rel=0.5
    )


def test_positions_stay_in_space():
    workload = generate_network_workload(small_params())
    for op in workload.ops:
        if isinstance(op, InsertOp):
            points = [op.point]
        elif isinstance(op, UpdateOp):
            points = [op.new_point]
        else:
            continue
        for p in points:
            assert 0.0 <= p.pos[0] <= 1000.0
            assert 0.0 <= p.pos[1] <= 1000.0


def test_objects_alternate_insert_then_updates():
    workload = generate_network_workload(small_params())
    seen = defaultdict(int)
    for op in workload.ops:
        if isinstance(op, InsertOp):
            assert seen[op.oid] == 0, "second InsertOp for same object"
            seen[op.oid] += 1
        elif isinstance(op, UpdateOp):
            assert seen[op.oid] == 1, "UpdateOp before InsertOp"


def test_mean_reported_speed():
    params = NetworkParams()
    # 0.75 * mean(0.75, 1.5, 3) = 1.3125 km/min.
    assert mean_reported_speed(params) == pytest.approx(1.3125)


def test_determinism_by_seed():
    a = generate_network_workload(small_params(seed=5))
    b = generate_network_workload(small_params(seed=5))
    c = generate_network_workload(small_params(seed=6))
    assert a.ops == b.ops
    assert a.ops != c.ops


# -- speed groups and report shape (the Section 5.1 generator contract) -------


def test_speed_group_assignment_frequencies():
    """Each of the three groups gets roughly a third of the objects.

    The assigned group is observed black-box: every route's report list
    contains one report exactly at cruise entry, where the speed equals
    the group maximum, so the max reported speed over an early stretch
    of the journey identifies the group.  Small space keeps routes
    short enough that 40 reports always cover one full route.
    """
    params = small_params(space=100.0, destinations=6)
    network = RouteNetwork(params, random.Random(0))
    factory = network_journey_factory(params, network)
    n = 300
    counts = defaultdict(int)
    for i in range(n):
        journey = factory(random.Random(i), 0.0)
        observed = max(next(journey)[3] for _ in range(40))
        group = min(SPEED_GROUPS, key=lambda g: abs(g - observed))
        assert observed == pytest.approx(group, rel=1e-9)
        counts[group] += 1
    assert set(counts) == set(SPEED_GROUPS)
    for group in SPEED_GROUPS:
        assert 0.25 <= counts[group] / n <= 0.42


def test_route_report_counts_follow_the_accel_decel_split():
    """Route of length 90 at vmax 3 with UI 10: exactly 1+3 reports."""
    reports = list(_route_reports(0.0, (0.0, 0.0), (90.0, 0.0), 3.0, 10.0))
    # t_accel = 10, t_cruise = 20, total = 40 -> updates = 3, split 2/1.
    assert len(reports) == 4
    times = [r[0] for r in reports]
    speeds = [r[3] for r in reports]
    assert times == pytest.approx([0.0, 5.0, 10.0, 35.0])
    assert speeds == pytest.approx([0.0, 1.5, 3.0, 1.5])
    # The last acceleration report lands exactly at cruise entry; the
    # deceleration report sits midway down the final sixth.
    assert speeds[2] == pytest.approx(3.0)


def test_accel_decel_report_split_for_even_and_odd_budgets():
    for ui, want_total in ((10.0, 4), (5.0, 8), (40.0, 2)):
        reports = list(
            _route_reports(0.0, (0.0, 0.0), (90.0, 0.0), 3.0, ui)
        )
        assert len(reports) == want_total
        t_accel, total = 10.0, 40.0
        accel = [r for r in reports[1:] if r[0] <= t_accel + 1e-9]
        decel = [r for r in reports[1:] if r[0] > total - t_accel - 1e-9]
        updates = want_total - 1
        assert len(accel) == (updates + 1) // 2
        assert len(decel) == updates - len(accel)


def test_mean_inter_report_gap_approximates_ui():
    """Over a long route the mean gap between reports is about UI."""
    ui = 10.0
    reports = list(
        _route_reports(0.0, (0.0, 0.0), (1200.0, 0.0), 2.0, ui)
    )
    times = [r[0] for r in reports]
    # total = 4 * 1200 / (3 * 2) = 800 -> 79 updates + the start report.
    assert len(reports) == 80
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(ui, rel=0.05)
    assert all(g > 0 for g in gaps)
