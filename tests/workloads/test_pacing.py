"""Tests for arrival pacing and overload burst windows."""

import pytest

from repro.workloads.pacing import ArrivalPacer, BurstWindow


class _Op:
    def __init__(self, t):
        self.time = t


def _ops(times):
    return [_Op(t) for t in times]


def test_no_bursts_arrivals_equal_op_times():
    times = [0.0, 1.0, 2.5, 2.5, 7.0]
    assert ArrivalPacer().arrivals(_ops(times)) == times


def test_burst_compresses_gaps_inside_window():
    pacer = ArrivalPacer([BurstWindow(10.0, 20.0, 4.0)])
    arrivals = pacer.arrivals(_ops([0.0, 8.0, 12.0, 16.0, 24.0]))
    assert arrivals[0] == 0.0 and arrivals[1] == 8.0
    # The gaps ending at t=12 and t=16 are divided by the factor 4.
    assert arrivals[2] == pytest.approx(9.0)
    assert arrivals[3] == pytest.approx(10.0)
    # The gap ending at t=24 is outside the window: the full 8 units.
    assert arrivals[4] == pytest.approx(18.0)
    assert arrivals == sorted(arrivals), "arrivals stay ordered"


def test_factor_below_one_stretches_arrivals():
    pacer = ArrivalPacer([BurstWindow(0.0, 100.0, 0.5)])
    assert pacer.arrivals(_ops([0.0, 10.0])) == [0.0, 20.0]


def test_window_is_half_open():
    burst = BurstWindow(1.0, 2.0, 2.0)
    assert burst.covers(1.0)
    assert not burst.covers(2.0)


def test_validation():
    with pytest.raises(ValueError):
        BurstWindow(5.0, 4.0, 2.0)
    with pytest.raises(ValueError):
        BurstWindow(0.0, 1.0, 0.0)
