"""Tests for expiration-time policies (Section 5.1)."""

import math

import pytest

from repro.workloads.expiration import (
    FixedDistance,
    FixedPeriod,
    NeverExpire,
    estimate_live_fraction,
)


def test_fixed_period():
    policy = FixedPeriod(120.0)
    assert policy.expiration(10.0, speed=3.0) == 130.0
    assert policy.expiration(10.0, speed=0.0) == 130.0
    assert policy.mean_validity(1.5) == 120.0


def test_fixed_distance_speed_dependence():
    """Fast objects expire sooner (Section 5.1)."""
    policy = FixedDistance(90.0)
    slow = policy.expiration(0.0, speed=0.75)
    fast = policy.expiration(0.0, speed=3.0)
    assert slow == pytest.approx(120.0)
    assert fast == pytest.approx(30.0)
    assert fast < slow


def test_fixed_distance_caps_stationary_objects():
    policy = FixedDistance(90.0, min_speed=0.05)
    assert policy.expiration(0.0, speed=0.0) == pytest.approx(1800.0)
    assert math.isfinite(policy.expiration(0.0, speed=0.0))


def test_never_expire():
    policy = NeverExpire()
    assert math.isinf(policy.expiration(5.0, 3.0))
    assert math.isinf(policy.mean_validity(1.0))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        FixedPeriod(0.0)
    with pytest.raises(ValueError):
        FixedDistance(-1.0)
    with pytest.raises(ValueError):
        FixedDistance(10.0, min_speed=0.0)


def test_live_fraction_one_when_validity_exceeds_gaps():
    assert estimate_live_fraction(FixedPeriod(1000.0), 60.0, 1.5) == 1.0
    assert estimate_live_fraction(NeverExpire(), 60.0, 1.5) == 1.0


def test_live_fraction_decreases_with_shorter_validity():
    long = estimate_live_fraction(FixedPeriod(100.0), 60.0, 1.5)
    short = estimate_live_fraction(FixedPeriod(30.0), 60.0, 1.5)
    assert short < long <= 1.0
    assert short >= 0.05


def test_live_fraction_formula():
    """T < 2 UI: fraction = (T - T^2/(4 UI)) / UI."""
    ui, t = 60.0, 60.0
    expected = (t - t * t / (4 * ui)) / ui
    assert estimate_live_fraction(
        FixedPeriod(t), ui, 1.5
    ) == pytest.approx(expected)


def test_describe_labels():
    assert FixedPeriod(120.0).describe() == "ExpT=120"
    assert FixedDistance(90.0).describe() == "ExpD=90"
    assert NeverExpire().describe() == "no-expiry"
