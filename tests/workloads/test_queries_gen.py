"""Tests for the query generator (Section 5.1 query mix)."""

import random

import pytest

from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.workloads.queries import QueryGenerator, QueryProfile


def make_gen(seed=0, **profile_kwargs):
    profile = QueryProfile(**profile_kwargs)
    return QueryGenerator(profile, random.Random(seed)), profile


def test_query_area_fraction():
    """Each spatial part is a square of 0.25% of the space."""
    gen, profile = make_gen()
    q = gen.generate(now=0.0, window=30.0)
    rect = q.rect if not isinstance(q, MovingQuery) else q.rect1
    assert rect.area == pytest.approx(profile.space ** 2 * 0.0025)
    side = rect.hi[0] - rect.lo[0]
    assert side == pytest.approx(rect.hi[1] - rect.lo[1])  # square


def test_mix_probabilities():
    gen, _ = make_gen()
    tracked = [MovingPoint((500.0, 500.0), (1.0, 0.0), 0.0, 1000.0)]
    counts = {TimesliceQuery: 0, WindowQuery: 0, MovingQuery: 0}
    for _ in range(3000):
        q = gen.generate(now=0.0, window=30.0, tracked=tracked)
        counts[type(q)] += 1
    assert counts[TimesliceQuery] == pytest.approx(1800, abs=150)
    assert counts[WindowQuery] == pytest.approx(600, abs=120)
    assert counts[MovingQuery] == pytest.approx(600, abs=120)


def test_temporal_parts_within_querying_window():
    gen, _ = make_gen()
    for _ in range(300):
        q = gen.generate(now=100.0, window=15.0)
        assert 100.0 <= q.t1 <= 115.0
        assert q.t1 <= q.t2 <= 115.0


def test_moving_query_follows_tracked_point():
    gen, profile = make_gen(moving_probability=1.0, timeslice_probability=0.0,
                            window_probability=0.0)
    target = MovingPoint((500.0, 500.0), (2.0, 0.0), 0.0, 1000.0)
    q = gen.generate(now=0.0, window=30.0, tracked=[target])
    assert isinstance(q, MovingQuery)
    c1 = target.position_at(q.t1)
    center1 = q.rect1.center
    assert center1[0] == pytest.approx(c1[0], abs=profile.side)
    assert center1[1] == pytest.approx(c1[1], abs=profile.side)


def test_moving_degrades_to_window_without_tracked_points():
    gen, _ = make_gen(moving_probability=1.0, timeslice_probability=0.0,
                      window_probability=0.0)
    q = gen.generate(now=0.0, window=30.0, tracked=[])
    assert isinstance(q, WindowQuery)


def test_queries_stay_within_space():
    gen, profile = make_gen(moving_probability=1.0, timeslice_probability=0.0,
                            window_probability=0.0)
    runaway = MovingPoint((999.0, 1.0), (5.0, -5.0), 0.0, 1000.0)
    for _ in range(50):
        q = gen.generate(now=0.0, window=30.0, tracked=[runaway])
        for rect in (q.rect1, q.rect2):
            assert rect.lo[0] >= 0.0 and rect.hi[0] <= profile.space
            assert rect.lo[1] >= 0.0 and rect.hi[1] <= profile.space


def test_profile_probabilities_must_sum_to_one():
    with pytest.raises(ValueError):
        QueryProfile(timeslice_probability=0.9, window_probability=0.9,
                     moving_probability=0.2)
