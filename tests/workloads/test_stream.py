"""Tests for the shared report-stream merging machinery."""

import itertools

import pytest

from repro.workloads.base import InsertOp, UpdateOp
from repro.workloads.expiration import FixedPeriod
from repro.workloads.queries import QueryProfile
from repro.workloads.stream import StreamParams, build_stream


def constant_journeys(step=1.0):
    """Objects reporting at fixed intervals from their start time."""

    def factory(rng, start_time):
        def journey():
            t = start_time
            x = rng.uniform(0, 1000)
            while True:
                yield (t, (x, 500.0), (0.0, 0.0), 1.0)
                t += step
        return journey()

    return factory


def build(population=10, insertions=100, **overrides):
    params_kwargs = dict(
        population=population,
        insertions=insertions,
        update_interval=1.0,
        querying_window=0.5,
        queries_per_insertions=10,
        start_ramp=0.5,
        seed=1,
    )
    params_kwargs.update(overrides)
    params = StreamParams(**params_kwargs)
    return build_stream(
        "test", params, constant_journeys(), FixedPeriod(2.0), QueryProfile()
    )


def test_insertion_budget_respected():
    w = build(insertions=100)
    assert w.insertion_count == 100


def test_first_report_is_insert_then_updates():
    w = build(population=5, insertions=50)
    first_seen = set()
    for op in w.ops:
        if isinstance(op, InsertOp):
            assert op.oid not in first_seen
            first_seen.add(op.oid)
        elif isinstance(op, UpdateOp):
            assert op.oid in first_seen


def test_updates_carry_previous_report():
    w = build(population=3, insertions=30)
    last = {}
    for op in w.ops:
        if isinstance(op, InsertOp):
            last[op.oid] = op.point
        elif isinstance(op, UpdateOp):
            assert op.old_point == last[op.oid]
            last[op.oid] = op.new_point


def test_queries_interleaved_at_requested_rate():
    w = build(insertions=100)
    assert w.query_count == 10


def test_operations_time_ordered():
    w = build(insertions=200, population=7)
    w.validate()


def test_turned_off_objects_are_replaced():
    w = build(population=10, insertions=300, new_object_fraction=1.0)
    inserts = sum(isinstance(op, InsertOp) for op in w.ops)
    # 10 initial objects + ~10 replacements.
    assert inserts == pytest.approx(20, abs=4)
    assert w.insertion_count == 300


def test_expiration_policy_applied_to_every_report():
    w = build(insertions=50)
    for op in w.ops:
        if isinstance(op, InsertOp):
            assert op.point.t_exp == pytest.approx(op.time + 2.0)
        elif isinstance(op, UpdateOp):
            assert op.new_point.t_exp == pytest.approx(op.time + 2.0)


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        StreamParams(population=0, insertions=1, update_interval=1.0,
                     querying_window=1.0)
    with pytest.raises(ValueError):
        StreamParams(population=1, insertions=0, update_interval=1.0,
                     querying_window=1.0)
    with pytest.raises(ValueError):
        StreamParams(population=1, insertions=1, update_interval=0.0,
                     querying_window=1.0)
    with pytest.raises(ValueError):
        StreamParams(population=1, insertions=1, update_interval=1.0,
                     querying_window=1.0, new_object_fraction=-1.0)
