"""Tests for workload trace persistence."""

import math

import pytest

from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp, Workload
from repro.workloads.expiration import FixedPeriod
from repro.workloads.io import load_workload, save_workload
from repro.workloads.network import NetworkParams, generate_network_workload


def sample_workload():
    p1 = MovingPoint((1.0, 2.0), (0.5, -0.5), 0.0, 10.0)
    p2 = MovingPoint((3.0, 4.0), (0.0, 1.0), 1.0, math.inf)
    r = Rect((0.0, 0.0), (5.0, 5.0))
    ops = [
        InsertOp(0.0, 1, p1),
        InsertOp(1.0, 2, p2),
        QueryOp(1.5, TimesliceQuery(r, 2.0)),
        UpdateOp(2.0, 1, p1, MovingPoint((2.0, 1.0), (0.0, 0.0), 2.0, 12.0)),
        QueryOp(2.5, WindowQuery(r, 3.0, 4.0)),
        QueryOp(3.0, MovingQuery(r, Rect((1.0, 1.0), (6.0, 6.0)), 3.0, 5.0)),
        DeleteOp(4.0, 2, p2),
    ]
    return Workload("sample", ops, {"seed": 3, "kind": "manual"})


def test_round_trip_exact(tmp_path):
    original = sample_workload()
    path = tmp_path / "trace.jsonl"
    save_workload(original, path)
    loaded = load_workload(path)
    assert loaded.name == original.name
    assert loaded.ops == original.ops
    assert loaded.params["kind"] == "manual"


def test_round_trip_generated_workload(tmp_path):
    workload = generate_network_workload(
        NetworkParams(target_population=40, insertions=300,
                      update_interval=10.0, seed=5),
        FixedPeriod(20.0),
    )
    path = tmp_path / "net.jsonl"
    save_workload(workload, path)
    loaded = load_workload(path)
    assert loaded.ops == workload.ops
    assert loaded.insertion_count == 300


def test_infinite_expiration_survives(tmp_path):
    w = sample_workload()
    save_workload(w, tmp_path / "t.jsonl")
    loaded = load_workload(tmp_path / "t.jsonl")
    assert math.isinf(loaded.ops[1].point.t_exp)


def test_rejects_non_trace_files(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        load_workload(bad)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_workload(empty)


def test_rejects_unknown_version(tmp_path):
    bad = tmp_path / "v9.jsonl"
    bad.write_text('{"format": "repro-workload", "version": 9}\n')
    with pytest.raises(ValueError):
        load_workload(bad)
