"""Tests for the disk-based B+-tree (the scheduled-deletion queue)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.bptree import BPlusTree


def make_tree(page_size=256, buffer_pages=8):
    return BPlusTree(page_size=page_size, buffer_pages=buffer_pages)


def test_insert_get():
    tree = make_tree()
    tree.insert((5.0, 1), "a")
    tree.insert((3.0, 2), "b")
    assert tree.get((5.0, 1)) == "a"
    assert tree.get((3.0, 2)) == "b"
    assert tree.get((9.0, 9)) is None
    assert len(tree) == 2


def test_insert_overwrites():
    tree = make_tree()
    tree.insert((1.0, 1), "a")
    tree.insert((1.0, 1), "b")
    assert tree.get((1.0, 1)) == "b"
    assert len(tree) == 1


def test_min_item_and_pop_min():
    tree = make_tree()
    keys = [(3.0, 1), (1.0, 2), (2.0, 3)]
    for k in keys:
        tree.insert(k, k[1])
    assert tree.min_item() == ((1.0, 2), 2)
    assert tree.pop_min() == ((1.0, 2), 2)
    assert tree.min_item() == ((2.0, 3), 3)


def test_pop_min_empty():
    assert make_tree().pop_min() is None
    assert make_tree().min_item() is None


def test_items_ordered_and_ranged():
    tree = make_tree()
    rng = random.Random(0)
    keys = [(rng.uniform(0, 100), i) for i in range(300)]
    for k in keys:
        tree.insert(k, None)
    ordered = [k for k, _ in tree.items()]
    assert ordered == sorted(keys)
    lo, hi = sorted(keys)[50], sorted(keys)[250]
    ranged = [k for k, _ in tree.items(lo, hi)]
    assert ranged == [k for k in sorted(keys) if lo <= k < hi]


def test_delete_missing_returns_false():
    tree = make_tree()
    tree.insert((1.0, 1), "a")
    assert not tree.delete((2.0, 2))
    assert len(tree) == 1


def test_grows_and_shrinks():
    tree = make_tree()
    rng = random.Random(1)
    keys = [(rng.uniform(0, 1000), i) for i in range(800)]
    for k in keys:
        tree.insert(k, None)
    assert tree.height >= 2
    tree.check_invariants()
    peak = tree.page_count
    for k in keys:
        assert tree.delete(k)
    tree.check_invariants()
    assert len(tree) == 0
    assert tree.page_count < peak


def test_invariants_under_mixed_churn():
    tree = make_tree()
    rng = random.Random(2)
    alive = set()
    for i in range(2000):
        if alive and rng.random() < 0.45:
            key = rng.choice(list(alive))
            alive.discard(key)
            assert tree.delete(key)
        else:
            key = (rng.uniform(0, 100), i)
            alive.add(key)
            tree.insert(key, i)
        if i % 500 == 499:
            tree.check_invariants()
    tree.check_invariants()
    assert len(tree) == len(alive)
    assert [k for k, _ in tree.items()] == sorted(alive)


def test_io_accounting():
    tree = make_tree(buffer_pages=2)
    for i in range(300):
        tree.insert((float(i), i), i)
    assert tree.stats.reads > 0
    assert tree.stats.writes > 0


def test_composite_key_ordering_matches_expiration_semantics():
    """(t_exp, oid) keys: earliest expiration pops first; ids break ties."""
    tree = make_tree()
    tree.insert((5.0, 9), "later")
    tree.insert((5.0, 1), "tie-lower-id")
    tree.insert((1.0, 100), "soonest")
    assert tree.pop_min()[1] == "soonest"
    assert tree.pop_min()[1] == "tie-lower-id"


@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 20)),
        min_size=1,
        max_size=300,
    )
)
@settings(deadline=None)
def test_property_behaves_like_sorted_dict(operations):
    """Insert/delete churn mirrors a dict; iteration mirrors sorted()."""
    tree = make_tree()
    model = {}
    for value, op in operations:
        key = (float(value % 50), value % 7)
        if op % 3 == 0 and key in model:
            del model[key]
            assert tree.delete(key)
        else:
            model[key] = value
            tree.insert(key, value)
    assert len(tree) == len(model)
    assert [(k, v) for k, v in tree.items()] == sorted(model.items())
    tree.check_invariants()
