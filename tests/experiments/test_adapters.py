"""Tests for the I/O-accounted index adapters."""

from repro.core.presets import rexp_config, tpr_config
from repro.experiments.adapters import ScheduledAdapter, TreeAdapter
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect

CONFIG = rexp_config(page_size=512, buffer_pages=4, default_ui=10.0)


def point(x, y, t_ref=0.0, t_exp=20.0):
    return MovingPoint((x, y), (0.0, 0.0), t_ref, t_exp)


def test_tree_adapter_accounts_updates_and_searches():
    adapter = TreeAdapter("t", CONFIG)
    for oid in range(80):
        adapter.insert(oid, point(float(oid % 10) * 10, float(oid // 10) * 10))
    assert adapter.op_stats.update_ops == 80
    assert adapter.op_stats.update_io > 0
    adapter.query(TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), 1.0))
    assert adapter.op_stats.search_ops == 1
    assert adapter.op_stats.search_io > 0


def test_tree_adapter_update_counts_two_operations():
    """Paper metric: I/O per *single insertion or deletion* operation."""
    adapter = TreeAdapter("t", CONFIG)
    p0 = point(1.0, 1.0)
    adapter.insert(1, p0)
    ops_before = adapter.op_stats.update_ops
    adapter.advance_time(1.0)
    adapter.update(1, p0, point(2.0, 2.0, t_ref=1.0))
    assert adapter.op_stats.update_ops == ops_before + 2


def test_tree_adapter_exact_semantics_flag():
    assert TreeAdapter("r", rexp_config()).exact_semantics
    assert not TreeAdapter("t", tpr_config()).exact_semantics


def test_scheduled_adapter_separates_queue_io():
    adapter = ScheduledAdapter("s", CONFIG, queue_buffer_pages=4)
    for oid in range(50):
        adapter.insert(oid, point(float(oid), float(oid), t_exp=5.0 + oid))
    assert adapter.op_stats.auxiliary_io > 0
    tree_only = adapter.op_stats.avg_update_io
    with_queue = adapter.op_stats.avg_update_io_with_auxiliary
    assert with_queue > tree_only
    assert adapter.aux_page_count > 0


def test_scheduled_adapter_counts_scheduled_deletions_as_updates():
    adapter = ScheduledAdapter("s", CONFIG, queue_buffer_pages=4)
    adapter.insert(1, point(5.0, 5.0, t_exp=10.0))
    ops_before = adapter.op_stats.update_ops
    adapter.advance_time(50.0)
    assert adapter.op_stats.update_ops == ops_before + 1
    assert adapter.audit().leaf_entries == 0


def test_adapter_page_counts():
    adapter = TreeAdapter("t", CONFIG)
    assert adapter.page_count >= 1
    assert adapter.aux_page_count == 0


def test_forest_adapter_accounts_and_exposes_partitions():
    from repro.core.presets import forest_config
    from repro.experiments.adapters import ForestAdapter

    config = forest_config(
        partitions=3, page_size=512, buffer_pages=6, default_ui=10.0
    )
    adapter = ForestAdapter("f", config)
    speeds = (0.2, 1.5, 2.9)
    for oid in range(60):
        adapter.insert(oid, MovingPoint(
            (float(oid % 10) * 10, float(oid // 10) * 10),
            (speeds[oid % 3], 0.0), 0.0, 40.0,
        ))
    assert adapter.op_stats.update_ops == 60
    assert adapter.op_stats.update_io > 0
    adapter.query(TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), 1.0))
    assert adapter.op_stats.search_ops == 1
    assert len(adapter.partition_page_counts) == 3
    assert sum(adapter.partition_page_counts) == adapter.page_count
    assert adapter.audit().leaf_entries == 60
    assert adapter.exact_semantics


def test_forest_adapter_replays_workload_with_oracle():
    from repro.core.presets import forest_config
    from repro.experiments.adapters import ForestAdapter
    from repro.experiments.runner import run_workload
    from repro.workloads.expiration import FixedPeriod
    from repro.workloads.uniform import UniformParams, generate_uniform_workload

    workload = generate_uniform_workload(
        UniformParams(target_population=60, insertions=500, seed=2),
        FixedPeriod(120.0),
    )
    config = forest_config(
        partitions=4, page_size=512, buffer_pages=8, default_ui=10.0
    )
    result = run_workload(
        ForestAdapter("forest/4", config), workload,
        verify=True, prepopulate=True,
    )
    assert result.oracle_mismatches == 0
    assert result.search_ops > 0
    assert len(result.partition_pages) == 4
    assert sum(result.partition_pages) == result.page_count
