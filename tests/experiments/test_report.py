"""Tests for figure formatting and shape checks."""

from repro.experiments.figures import FigureResult
from repro.experiments.report import format_figure, shape_checks


def fig13_like(rexp, tpr, rexp_sched, tpr_sched, xs=None):
    xs = xs or [45.0, 90.0, 180.0]
    fig = FigureResult(
        "fig13", "Search Performance", "ExpD", "Search I/O", xs
    )
    fig.series = {
        "Rexp-tree": rexp,
        "TPR-tree": tpr,
        "Rexp-tree with scheduled deletions": rexp_sched,
        "TPR-tree with scheduled deletions": tpr_sched,
    }
    fig.scale_name = "test"
    return fig


def test_format_figure_contains_series_and_xs():
    fig = fig13_like([1, 2, 3], [2, 4, 6], [1, 2, 3], [1, 2, 3])
    text = format_figure(fig)
    assert "fig13" in text
    assert "Rexp-tree" in text
    assert "45" in text and "180" in text


def test_shape_checks_pass_on_paper_like_data():
    """Series shaped like the paper's Figure 13 pass every check."""
    fig = fig13_like(
        rexp=[10.0, 12.0, 18.0],
        tpr=[25.0, 25.0, 26.0],
        rexp_sched=[9.0, 11.0, 17.0],
        tpr_sched=[10.0, 12.0, 18.0],
    )
    checks = shape_checks(fig)
    assert checks
    assert all(c.passed for c in checks)


def test_shape_checks_fail_on_inverted_data():
    fig = fig13_like(
        rexp=[30.0, 30.0, 30.0],
        tpr=[10.0, 10.0, 10.0],
        rexp_sched=[9.0, 9.0, 9.0],
        tpr_sched=[10.0, 10.0, 10.0],
    )
    checks = shape_checks(fig)
    assert any(not c.passed for c in checks)


def test_best_series_at():
    fig = fig13_like([1, 9, 9], [2, 2, 2], [3, 3, 1], [4, 4, 4])
    assert fig.best_series_at(45.0) == "Rexp-tree"
    assert fig.best_series_at(180.0) == "Rexp-tree with scheduled deletions"


def test_unknown_figure_has_no_checks():
    fig = FigureResult("figX", "t", "x", "y", [1.0])
    fig.series = {"s": [1.0]}
    assert shape_checks(fig) == []
