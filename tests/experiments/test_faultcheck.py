"""Crash-at-every-write property test for the durability stack."""

import pytest

from repro.core.config import TreeConfig
from repro.experiments.faultcheck import (
    FaultCheckReport,
    default_workload,
    run_faultcheck,
)


def test_crash_at_every_write_recovers_committed_state():
    """The tentpole guarantee: crash anywhere, recover, answer identically.

    Every physical write of a recorded mixed workload is interrupted in
    all three fault modes; after each crash the store must reopen (or
    legitimately report nothing committed) and answer all three query
    types exactly as a clean replay of the committed prefix does.
    """
    workload = default_workload(insertions=30, seed=0)
    report = run_faultcheck(workload=workload, stride=1)
    assert report.total_writes > 50  # the matrix actually covered a run
    assert report.crash_points == 3 * len(
        range(1, report.total_writes + 1)
    )
    assert report.passed, [f.detail for f in report.failures[:5]]


def test_faultcheck_stride_samples_the_matrix():
    report = run_faultcheck(
        workload=default_workload(insertions=20, seed=1), stride=9,
        modes=("kill",),
    )
    assert report.passed, [f.detail for f in report.failures[:5]]
    assert report.crash_points == len(range(1, report.total_writes + 1, 9))


def test_faultcheck_4k_pages():
    report = run_faultcheck(
        workload=default_workload(insertions=15, seed=2),
        config=TreeConfig(page_size=4096, buffer_pages=4),
        stride=5, modes=("torn",),
    )
    assert report.passed, [f.detail for f in report.failures[:5]]


def test_report_summary_mentions_verdict():
    report = FaultCheckReport(
        total_writes=10, op_count=4, stride=1, modes=("kill",)
    )
    assert "PASS" in report.summary()


def test_invalid_stride_rejected():
    with pytest.raises(ValueError):
        run_faultcheck(stride=0)
