"""Tests for the workload runner."""

from repro.core.presets import rexp_config, tpr_config
from repro.experiments.adapters import TreeAdapter
from repro.experiments.runner import run_workload
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect
from repro.workloads.base import (
    DeleteOp,
    InsertOp,
    QueryOp,
    UpdateOp,
    Workload,
)

CONFIG = rexp_config(page_size=512, buffer_pages=4, default_ui=10.0)


def point(x, y, t_ref=0.0, t_exp=100.0):
    return MovingPoint((x, y), (0.0, 0.0), t_ref, t_exp)


def tiny_workload():
    ops = [
        InsertOp(0.0, 1, point(5.0, 5.0)),
        InsertOp(0.1, 2, point(50.0, 50.0)),
        QueryOp(0.2, TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 1.0)),
        UpdateOp(1.0, 1, point(5.0, 5.0), point(60.0, 60.0, t_ref=1.0)),
        QueryOp(1.1, TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 2.0)),
        DeleteOp(2.0, 2, point(50.0, 50.0)),
        QueryOp(2.1, TimesliceQuery(Rect((40.0, 40.0), (70.0, 70.0)), 3.0)),
    ]
    return Workload("tiny", ops, {"kind": "manual"})


def test_runner_executes_all_op_kinds():
    adapter = TreeAdapter("t", CONFIG)
    result = run_workload(adapter, tiny_workload(), verify=True)
    assert result.search_ops == 3
    # 2 inserts + (delete+insert) + 1 delete = 5 update operations.
    assert result.update_ops == 5
    assert result.oracle_mismatches == 0
    assert result.page_count >= 1
    assert result.params["kind"] == "manual"


def test_runner_advances_clock():
    adapter = TreeAdapter("t", CONFIG)
    run_workload(adapter, tiny_workload())
    assert adapter.clock.time == 2.1


def test_runner_counts_failed_deletes():
    ops = [
        InsertOp(0.0, 1, point(5.0, 5.0, t_exp=1.0)),
        DeleteOp(10.0, 1, point(5.0, 5.0, t_exp=1.0)),  # expired by now
    ]
    adapter = TreeAdapter("t", CONFIG)
    result = run_workload(adapter, Workload("w", ops))
    assert result.failed_deletes == 1


def test_runner_verification_superset_for_tpr():
    """The TPR-tree may answer with expired false drops (Section 3) but
    must never miss a live match."""
    config = tpr_config(page_size=512, buffer_pages=4, default_ui=10.0)
    ops = [
        InsertOp(0.0, 1, point(5.0, 5.0, t_exp=1.0)),  # expires quickly
        InsertOp(0.1, 2, point(6.0, 6.0, t_exp=100.0)),
        QueryOp(5.0, TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 6.0)),
    ]
    adapter = TreeAdapter("tpr", config)
    result = run_workload(adapter, Workload("w", ops), verify=True)
    # Object 1 is a false drop for the TPR-tree, but that is allowed.
    assert result.oracle_mismatches == 0


def test_runner_measures_result_sizes():
    adapter = TreeAdapter("t", CONFIG)
    result = run_workload(adapter, tiny_workload())
    assert result.avg_result_size > 0.0
