"""Tests for the workload runner."""

from repro.core.presets import rexp_config, tpr_config
from repro.experiments.adapters import TreeAdapter
from repro.experiments.runner import run_workload
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect
from repro.workloads.base import (
    DeleteOp,
    InsertOp,
    QueryOp,
    UpdateOp,
    Workload,
)

CONFIG = rexp_config(page_size=512, buffer_pages=4, default_ui=10.0)


def point(x, y, t_ref=0.0, t_exp=100.0):
    return MovingPoint((x, y), (0.0, 0.0), t_ref, t_exp)


def tiny_workload():
    ops = [
        InsertOp(0.0, 1, point(5.0, 5.0)),
        InsertOp(0.1, 2, point(50.0, 50.0)),
        QueryOp(0.2, TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 1.0)),
        UpdateOp(1.0, 1, point(5.0, 5.0), point(60.0, 60.0, t_ref=1.0)),
        QueryOp(1.1, TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 2.0)),
        DeleteOp(2.0, 2, point(50.0, 50.0)),
        QueryOp(2.1, TimesliceQuery(Rect((40.0, 40.0), (70.0, 70.0)), 3.0)),
    ]
    return Workload("tiny", ops, {"kind": "manual"})


def test_runner_executes_all_op_kinds():
    adapter = TreeAdapter("t", CONFIG)
    result = run_workload(adapter, tiny_workload(), verify=True)
    assert result.search_ops == 3
    # 2 inserts + (delete+insert) + 1 delete = 5 update operations.
    assert result.update_ops == 5
    assert result.oracle_mismatches == 0
    assert result.page_count >= 1
    assert result.params["kind"] == "manual"


def test_runner_advances_clock():
    adapter = TreeAdapter("t", CONFIG)
    run_workload(adapter, tiny_workload())
    assert adapter.clock.time == 2.1


def test_runner_counts_failed_deletes():
    ops = [
        InsertOp(0.0, 1, point(5.0, 5.0, t_exp=1.0)),
        DeleteOp(10.0, 1, point(5.0, 5.0, t_exp=1.0)),  # expired by now
    ]
    adapter = TreeAdapter("t", CONFIG)
    result = run_workload(adapter, Workload("w", ops))
    assert result.failed_deletes == 1


def test_runner_verification_superset_for_tpr():
    """The TPR-tree may answer with expired false drops (Section 3) but
    must never miss a live match."""
    config = tpr_config(page_size=512, buffer_pages=4, default_ui=10.0)
    ops = [
        InsertOp(0.0, 1, point(5.0, 5.0, t_exp=1.0)),  # expires quickly
        InsertOp(0.1, 2, point(6.0, 6.0, t_exp=100.0)),
        QueryOp(5.0, TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 6.0)),
    ]
    adapter = TreeAdapter("tpr", config)
    result = run_workload(adapter, Workload("w", ops), verify=True)
    # Object 1 is a false drop for the TPR-tree, but that is allowed.
    assert result.oracle_mismatches == 0


def test_runner_measures_result_sizes():
    adapter = TreeAdapter("t", CONFIG)
    result = run_workload(adapter, tiny_workload())
    assert result.avg_result_size > 0.0


# -- bulk-loaded prepopulation ------------------------------------------------


def bigger_workload(n=80):
    """First reports, then interleaved updates and queries."""
    import random

    rng = random.Random(4)
    ops = []
    t = 0.0
    points = {}
    for oid in range(n):
        t += 0.01
        points[oid] = MovingPoint(
            (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            (rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)),
            t,
            t + rng.uniform(10.0, 60.0),
        )
        ops.append(InsertOp(t, oid, points[oid]))
    for step in range(60):
        t += 0.5
        if step % 3 == 0:
            x = rng.uniform(0.0, 75.0)
            ops.append(QueryOp(
                t, TimesliceQuery(Rect((x, x), (x + 25.0, x + 25.0)), t + 1.0)
            ))
        else:
            oid = rng.randrange(n)
            new = MovingPoint(
                (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
                (rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)),
                t,
                t + rng.uniform(10.0, 60.0),
            )
            ops.append(UpdateOp(t, oid, points[oid], new))
            points[oid] = new
    return Workload("bigger", ops, {"kind": "manual"})


def test_split_initial_population():
    from repro.experiments.runner import split_initial_population

    workload = bigger_workload()
    initial, remaining = split_initial_population(workload)
    assert len(initial) == 80
    assert len(initial) + len(remaining) == len(workload.ops)
    assert not any(isinstance(op, InsertOp) for op in remaining)


def test_split_stops_at_first_query():
    from repro.experiments.runner import split_initial_population

    ops = [
        InsertOp(0.0, 1, point(5.0, 5.0)),
        QueryOp(0.2, TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 1.0)),
        InsertOp(0.3, 2, point(50.0, 50.0)),
    ]
    initial, remaining = split_initial_population(Workload("w", ops))
    assert [oid for oid, _ in initial] == [1]
    assert len(remaining) == 2


def test_prepopulated_run_matches_replayed_run():
    workload = bigger_workload()
    replayed = run_workload(TreeAdapter("t", CONFIG), workload, verify=True)
    prepopulated = run_workload(
        TreeAdapter("t", CONFIG), workload, verify=True, prepopulate=True
    )
    assert replayed.oracle_mismatches == 0
    assert prepopulated.oracle_mismatches == 0
    assert prepopulated.prepopulated == 80
    assert prepopulated.setup_io > 0
    # The initial inserts moved out of the update tally into setup.
    assert prepopulated.update_ops == replayed.update_ops - 80
    assert prepopulated.search_ops == replayed.search_ops


def test_prepopulate_scheduled_adapter():
    from repro.experiments.adapters import ScheduledAdapter

    workload = bigger_workload()
    adapter = ScheduledAdapter("s", CONFIG)
    result = run_workload(adapter, workload, verify=True, prepopulate=True)
    assert result.oracle_mismatches == 0
    assert result.prepopulated == 80
    # Bulk-loaded reports still get their deletions scheduled.
    assert adapter.index.scheduled_deletions > 0


def test_prepopulate_default_adapter_falls_back_to_inserts():
    from repro.experiments.adapters import IndexAdapter

    class Recorder(TreeAdapter):
        pass

    # Route bulk_load through the ABC default (insert loop).
    adapter = Recorder("r", CONFIG)
    adapter.bulk_load = lambda items: IndexAdapter.bulk_load(adapter, items)
    result = run_workload(adapter, bigger_workload(), verify=True,
                          prepopulate=True)
    assert result.oracle_mismatches == 0
    assert result.prepopulated == 80
    assert result.setup_io > 0
    # Only the post-ramp updates: 40 UpdateOps, each a delete + insert.
    assert result.update_ops == 80
