"""Durability wiring through the adapters and the workload runner."""

import pytest

from repro.core.forest import ForestConfig
from repro.core.presets import rexp_config
from repro.experiments.adapters import IndexAdapter, ForestAdapter, TreeAdapter
from repro.experiments.runner import run_workload
from repro.geometry.kinematics import MovingPoint
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload

CONFIG = rexp_config(page_size=512, buffer_pages=8, default_ui=10.0)


def small_workload(seed=0):
    return generate_uniform_workload(
        UniformParams(
            target_population=30,
            insertions=120,
            update_interval=10.0,
            space=100.0,
            queries_per_insertions=10,
            seed=seed,
        ),
        FixedPeriod(20.0),
    )


def test_durable_run_charges_index_io_identically(tmp_path):
    """Acceptance criterion at the runner level.

    The same workload replayed on a simulated and a durable tree must
    report identical search/update averages; WAL traffic appears only
    in ``auxiliary_io``.
    """
    workload = small_workload()
    simulated = run_workload(TreeAdapter("sim", CONFIG), workload)
    durable = run_workload(
        TreeAdapter("dur", CONFIG), workload,
        durability=str(tmp_path / "t"),
    )
    assert durable.avg_search_io == simulated.avg_search_io
    assert durable.avg_update_io == simulated.avg_update_io
    assert durable.page_count == simulated.page_count
    assert simulated.auxiliary_io == 0
    assert durable.auxiliary_io > 0
    assert durable.avg_update_io_with_aux > durable.avg_update_io


def test_durable_run_with_prepopulation(tmp_path):
    workload = small_workload(seed=1)
    result = run_workload(
        TreeAdapter("dur", CONFIG), workload,
        prepopulate=True, durability=str(tmp_path / "t"),
        verify=True,
    )
    assert result.prepopulated > 0
    assert result.oracle_mismatches == 0
    assert result.auxiliary_io > 0


def test_durable_forest_run(tmp_path):
    workload = small_workload(seed=2)
    config = ForestConfig(tree=CONFIG, partitions=2)
    simulated = run_workload(ForestAdapter("sim", config), workload)
    durable = run_workload(
        ForestAdapter("dur", config), workload,
        durability=str(tmp_path / "f"),
    )
    assert durable.avg_search_io == simulated.avg_search_io
    assert durable.avg_update_io == simulated.avg_update_io
    assert durable.auxiliary_io > 0


def test_enable_durability_rejects_used_adapter(tmp_path):
    adapter = TreeAdapter("t", CONFIG)
    adapter.insert(1, MovingPoint((1.0, 1.0), (0.0, 0.0), 0.0, 50.0))
    with pytest.raises(ValueError):
        adapter.enable_durability(str(tmp_path / "t"))


def test_base_adapter_has_no_durable_backend(tmp_path):
    class Bare(IndexAdapter):
        def advance_time(self, t):
            pass

        def insert(self, oid, point):
            pass

        def delete(self, oid, point):
            return False

        def query(self, query):
            return []

        @property
        def page_count(self):
            return 0

    adapter = Bare("bare")
    with pytest.raises(NotImplementedError):
        adapter.enable_durability(str(tmp_path / "x"))
    adapter.close()  # the default close is a harmless no-op


def test_runner_closes_durable_store_for_reopen(tmp_path):
    """After a durable run the store must be cleanly closed on disk."""
    from repro.core.tree import MovingObjectTree

    workload = small_workload(seed=3)
    run_workload(
        TreeAdapter("dur", CONFIG), workload,
        durability=str(tmp_path / "t"),
    )
    reopened = MovingObjectTree.open_from(str(tmp_path / "t"), CONFIG)
    audit = reopened.audit()
    assert audit.leaf_entries > 0
    reopened.close()
