"""Tests for scale presets and the on-disk run cache."""

import os

import pytest

from repro.experiments.cache import (
    cache_enabled,
    load_result,
    run_key,
    store_result,
)
from repro.experiments.runner import RunResult
from repro.experiments.scale import SCALES, current_scale


def test_scales_are_ordered_by_size():
    assert (
        SCALES["tiny"].target_population
        < SCALES["small"].target_population
        < SCALES["medium"].target_population
        < SCALES["paper"].target_population
    )


def test_paper_scale_matches_the_paper():
    paper = SCALES["paper"]
    assert paper.target_population == 100_000
    assert paper.insertions == 1_000_000
    assert paper.page_size == 4096
    assert paper.buffer_pages == 50


def test_current_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "medium")
    assert current_scale().name == "medium"
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        current_scale()
    monkeypatch.delenv("REPRO_SCALE")
    assert current_scale().name == "tiny"


def test_run_key_stability_and_sensitivity():
    sig = {"name": "w", "seed": 1}
    k1 = run_key("adapter", sig, "tiny")
    k2 = run_key("adapter", dict(sig), "tiny")
    assert k1 == k2
    assert run_key("other", sig, "tiny") != k1
    assert run_key("adapter", {"name": "w", "seed": 2}, "tiny") != k1
    assert run_key("adapter", sig, "small") != k1


def test_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    result = RunResult(
        adapter="a", workload="w", avg_search_io=3.5, page_count=17,
        params={"seed": 1},
    )
    key = run_key("a", {"name": "w"}, "tiny")
    assert load_result(key) is None
    store_result(key, result)
    loaded = load_result(key)
    assert loaded is not None
    assert loaded.avg_search_io == 3.5
    assert loaded.page_count == 17


def test_cache_disabled_by_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert not cache_enabled()
    key = run_key("a", {"name": "w"}, "tiny")
    store_result(key, RunResult(adapter="a", workload="w"))
    assert load_result(key) is None


def test_cache_tolerates_corrupt_files(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    key = run_key("a", {"name": "w"}, "tiny")
    (tmp_path / f"{key}.json").write_text("{not json")
    assert load_result(key) is None
