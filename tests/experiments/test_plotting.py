"""Tests for ASCII figure rendering."""

from repro.experiments.figures import FigureResult
from repro.experiments.plotting import ascii_chart


def make_fig():
    fig = FigureResult("fig13", "Search Performance", "ExpD", "Search I/O",
                       [45.0, 90.0, 180.0])
    fig.series = {
        "Rexp-tree": [1.0, 1.5, 2.0],
        "TPR-tree": [4.0, 4.0, 3.5],
    }
    return fig


def test_chart_contains_axes_and_legend():
    text = ascii_chart(make_fig())
    assert "fig13" in text
    assert "Rexp-tree" in text and "TPR-tree" in text
    assert "45" in text and "180" in text
    assert "Search I/O" in text


def test_series_glyphs_present():
    text = ascii_chart(make_fig())
    assert "o" in text  # first series glyph
    assert "x" in text  # second series glyph


def test_constant_series_does_not_crash():
    fig = FigureResult("f", "t", "x", "y", [1.0, 2.0])
    fig.series = {"s": [3.0, 3.0]}
    text = ascii_chart(fig)
    assert "s" in text


def test_single_point_series():
    fig = FigureResult("f", "t", "x", "y", [1.0])
    fig.series = {"s": [3.0]}
    assert "(y" in ascii_chart(fig)


def test_empty_figure():
    fig = FigureResult("f", "t", "x", "y", [])
    assert "no data" in ascii_chart(fig)


def test_custom_dimensions():
    text = ascii_chart(make_fig(), width=30, height=8)
    # 8 grid rows between the two axis lines.
    lines = text.splitlines()
    grid_rows = [l for l in lines if l.startswith(" " * 11 + "|")]
    assert len(grid_rows) == 8
