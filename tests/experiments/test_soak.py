"""Tests for the chaos soak harness (scripted faults + SLO checks)."""

import json

import pytest

from repro.experiments.soak import (
    FaultScript,
    SoakReport,
    default_fault_script,
    default_soak_params,
    run_soak,
    write_report,
)

#: A scaled-down script calibrated for a 600-insertion workload: one
#: transient write burst (trips the breaker, fails the first probe,
#: recovers on the second), one guarded-read hiccup, one process kill
#: with WAL recovery, one post-recovery transient write, and a 25x
#: overload phase.
SMALL_SCRIPT = FaultScript(
    transient_writes=(600, 601, 602, 603),
    transient_reads=(400,),
    kill_at_write=4500,
    post_kill_transient_writes=(100,),
    overload=(40.0, 60.0, 25.0),
    seed=0,
    staleness_bound=30.0,
    expected_trips=1,
    expected_probes=2,
    expected_recoveries=1,
)


@pytest.fixture(scope="module")
def small_soak():
    params = default_soak_params(seed=0, insertions=600)
    return run_soak(SMALL_SCRIPT, params=params)


def test_small_soak_passes_every_slo(small_soak):
    assert small_soak.passed, small_soak.violations
    c = small_soak.counters
    assert c["trips"] == 1 and c["recoveries"] == 1
    assert c["kills"] == 1 and c["reopens"] == 1
    assert c["degraded_answers"] >= 1
    assert c["retries"] >= 1
    assert c["backlog_enqueued"] == c["backlog_replayed"] > 0
    assert c["backlog_remaining"] == 0
    assert c["shed_writes"] == 0 and c["failed_queries"] == 0
    assert c["shed_queries"] + c["deadline_timeouts"] > 0, "overload bit"
    assert c["max_staleness"] <= SMALL_SCRIPT.staleness_bound


def test_soak_is_deterministic(small_soak):
    again = run_soak(
        SMALL_SCRIPT, params=default_soak_params(seed=0, insertions=600)
    )
    assert again.counters == small_soak.counters
    assert again.violations == small_soak.violations
    assert again.total_writes == small_soak.total_writes


def test_pinned_expectations_catch_drift():
    params = default_soak_params(seed=0, insertions=300)
    report = run_soak(FaultScript(seed=0, expected_trips=2), params=params)
    assert not report.passed
    assert any("trips" in v for v in report.violations)


def test_fault_script_json_round_trip():
    script = default_fault_script(seed=3)
    payload = json.loads(json.dumps(script.to_json()))
    assert FaultScript.from_json(payload) == script
    # A minimal payload fills in every default.
    assert FaultScript.from_json({}) == FaultScript()


def test_fault_script_injector_incarnations():
    script = SMALL_SCRIPT
    first = script.injector(0)
    assert first.crash_at_write == script.kill_at_write
    assert first.transient_writes == frozenset(script.transient_writes)
    later = script.injector(1)
    assert later.crash_at_write is None, "recovered incarnations never die"
    assert later.transient_writes == frozenset(
        script.post_kill_transient_writes
    )


def test_fault_script_bursts():
    (burst,) = SMALL_SCRIPT.bursts()
    assert (burst.start, burst.end, burst.compress) == (40.0, 60.0, 25.0)
    assert FaultScript().bursts() == ()


def test_write_report_round_trips(tmp_path, small_soak):
    path = tmp_path / "BENCH_soak.json"
    write_report(small_soak, str(path))
    payload = json.loads(path.read_text())
    assert payload["passed"] is True
    assert payload["ops"] == small_soak.ops
    assert payload["counters"]["trips"] == 1
    assert payload["script"]["kill_at_write"] == SMALL_SCRIPT.kill_at_write


def test_soak_report_summary_mentions_verdict():
    report = SoakReport(ops=10, queries=2, total_writes=5)
    assert "PASS" in report.summary()
    report.violations.append("boom")
    assert "FAIL" in report.summary()
    assert not report.passed


def test_report_exports_slo_budget_statuses(small_soak):
    assert set(small_soak.slos) == {"availability", "freshness"}
    for status in small_soak.slos.values():
        assert status["met"] is True
        assert status["good"] + status["bad"] > 0
        assert status["burn_rate"] < 1.0
        assert 0.0 < status["target"] < 1.0


def test_replicated_soak_passes_replication_slos():
    from repro.experiments.soak import default_replica_scenario

    report = run_soak(
        default_fault_script(seed=0),
        params=default_soak_params(seed=0),
        replica=default_replica_scenario(),
    )
    assert report.passed, report.violations
    c = report.counters
    # The script's kill is answered by promotion, never by reopening
    # the dead store.
    assert c["kills"] == 1 and c["reopens"] == 0
    r = report.replication
    assert r["promotions"] == 1
    assert r["truncation_cycles"] >= 3
    assert r["footprint_high_water"] <= r["footprint_bound"]
    assert r["max_staleness"] <= r["staleness_budget"]
    assert r["applied_batches"] <= r["shipped_batches"]
    assert r["channel_faults"] >= 1, "the chaos channel never faulted"
    assert set(report.slos) >= {
        "availability", "freshness", "replica_staleness",
    }
