"""Smoke tests for the figure definitions at micro scale.

These run the real sweep machinery end to end (workload generation,
adapters, caching) against a deliberately minuscule scale so the whole
file stays fast; the full-size sweeps live in benchmarks/.
"""

import pytest

from repro.experiments import figures as F
from repro.experiments.scale import Scale

MICRO = Scale(
    name="micro-test",
    target_population=60,
    insertions=600,
    page_size=512,
    buffer_pages=4,
    queue_buffer_pages=4,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)


def test_figure13_micro_runs_and_caches(tmp_path):
    fig = F.figure13(MICRO)
    assert fig.xs == F.EXPD_VALUES
    assert set(fig.series) == {
        "Rexp-tree",
        "TPR-tree",
        "Rexp-tree with scheduled deletions",
        "TPR-tree with scheduled deletions",
    }
    for values in fig.series.values():
        assert len(values) == len(fig.xs)
        assert all(v >= 0.0 for v in values)
    cached_files = list(tmp_path.glob("*.json"))
    assert len(cached_files) == 20  # 4 series x 5 sweep points
    # Second invocation is served from cache: identical values.
    again = F.figure13(MICRO)
    assert again.series == fig.series
    assert len(list(tmp_path.glob("*.json"))) == 20


def test_newob_figures_share_their_runs(tmp_path):
    F.figure14(MICRO)
    files_after_14 = len(list(tmp_path.glob("*.json")))
    fig15 = F.figure15(MICRO)
    fig16 = F.figure16(MICRO)
    # Figures 15 and 16 are different views of the same sweep.
    assert len(list(tmp_path.glob("*.json"))) == files_after_14
    assert all(v >= 1.0 for v in fig15.series["Rexp-tree"])  # page counts
    assert all(v >= 0.0 for v in fig16.series["Rexp-tree"])


def test_figure9_micro_runs_all_flavors():
    fig = F.figure9(MICRO)
    assert len(fig.series) == 4
    for values in fig.series.values():
        assert len(values) == len(F.EXPT_VALUES)


def test_figure11_micro_runs_all_bounding_kinds():
    fig = F.figure11(MICRO)
    assert len(fig.series) == 5
    for label in ("Static", "Near-optimal", "Optimal"):
        assert label in fig.series


def test_ablation_lazy_purge_micro():
    fig = F.ablation_lazy_purge(MICRO)
    values = fig.series["Rexp-tree"]
    assert all(0.0 <= v <= 1.0 for v in values)


def test_flavor_adapter_labels_match_the_paper():
    adapters = F.flavor_adapters_fig9(MICRO)
    assert set(adapters) == {
        "BRs with exp.t., algs with exp.t.",
        "BRs w/o exp.t., algs with exp.t.",
        "BRs with exp.t., algs w/o exp.t.",
        "BRs w/o exp.t., algs w/o exp.t.",
    }


def test_bounding_adapter_labels_match_the_paper():
    adapters = F.bounding_adapters(MICRO)
    assert set(adapters) == {
        "Static",
        "Update-minimum, algs w/o exp.t.",
        "Update-minimum, algs with exp.t.",
        "Near-optimal",
        "Optimal",
    }


def test_sweep_grids_match_table1():
    assert F.EXPT_VALUES == [30.0, 60.0, 120.0, 180.0, 240.0]
    assert F.UI_VALUES == [30.0, 60.0, 90.0, 120.0]
    assert F.EXPD_VALUES == [45.0, 90.0, 180.0, 270.0, 360.0]
    assert F.NEWOB_VALUES == [0.0, 0.5, 1.0, 1.5, 2.0]


def test_all_figures_registry_complete():
    assert set(F.ALL_FIGURES) == {f"fig{i}" for i in range(9, 17)}
