"""Tests for the byte-accurate entry layout model."""

import pytest

from repro.storage.layout import EntryLayout


def test_paper_fanouts_at_4k():
    """The paper's 4 KB page yields 170 leaf / 102 internal entries."""
    layout = EntryLayout(page_size=4096, dims=2)
    assert layout.leaf_entry_bytes == 24
    assert layout.internal_entry_bytes == 40
    assert layout.leaf_capacity == 170
    assert layout.internal_capacity == 102


def test_static_brs_nearly_double_internal_fanout():
    """Dropping stored velocities: 'almost a factor of two' (Section 4.1.2)."""
    with_vel = EntryLayout(page_size=4096, dims=2, store_velocities=True)
    without = EntryLayout(page_size=4096, dims=2, store_velocities=False)
    ratio = without.internal_capacity / with_vel.internal_capacity
    assert 1.5 <= ratio <= 2.0


def test_dropping_br_expiration_increases_fanout():
    with_exp = EntryLayout(page_size=4096, store_br_expiration=True)
    without = EntryLayout(page_size=4096, store_br_expiration=False)
    assert without.internal_capacity > with_exp.internal_capacity
    assert without.leaf_capacity == with_exp.leaf_capacity


def test_dropping_leaf_expiration_increases_leaf_fanout():
    with_exp = EntryLayout(page_size=4096, store_leaf_expiration=True)
    without = EntryLayout(page_size=4096, store_leaf_expiration=False)
    assert without.leaf_capacity > with_exp.leaf_capacity


def test_capacity_scales_with_page_size():
    small = EntryLayout(page_size=1024)
    large = EntryLayout(page_size=4096)
    assert large.leaf_capacity > 3 * small.leaf_capacity


def test_dimensionality_raises_entry_size():
    d2 = EntryLayout(page_size=4096, dims=2)
    d3 = EntryLayout(page_size=4096, dims=3)
    assert d3.leaf_entry_bytes > d2.leaf_entry_bytes
    assert d3.leaf_capacity < d2.leaf_capacity


def test_too_small_page_rejected():
    with pytest.raises(ValueError):
        EntryLayout(page_size=64, dims=3)


def test_invalid_dims_rejected():
    with pytest.raises(ValueError):
        EntryLayout(dims=0)


def test_capacity_accessor():
    layout = EntryLayout(page_size=4096)
    assert layout.capacity(leaf=True) == layout.leaf_capacity
    assert layout.capacity(leaf=False) == layout.internal_capacity
