"""Tests for I/O statistics accounting."""

from repro.storage.stats import IOSnapshot, IOStats, OperationStats


def test_snapshot_delta():
    stats = IOStats()
    stats.reads = 5
    snap = stats.snapshot()
    stats.reads += 3
    stats.writes += 2
    delta = stats.since(snap)
    assert delta.reads == 3
    assert delta.writes == 2
    assert delta.total == 5


def test_reset():
    stats = IOStats(reads=4, writes=2, allocations=1, frees=1)
    stats.reset()
    assert stats.total == 0
    assert stats.allocations == 0


def test_snapshot_addition():
    a = IOSnapshot(reads=1, writes=2)
    b = IOSnapshot(reads=3, writes=4, allocations=5)
    c = a + b
    assert (c.reads, c.writes, c.allocations) == (4, 6, 5)


def test_operation_stats_averages():
    ops = OperationStats()
    ops.record_search(10)
    ops.record_search(20)
    ops.record_update(4)
    assert ops.avg_search_io == 15.0
    assert ops.avg_update_io == 4.0


def test_operation_stats_empty_averages_are_zero():
    ops = OperationStats()
    assert ops.avg_search_io == 0.0
    assert ops.avg_update_io == 0.0
    assert ops.avg_update_io_with_auxiliary == 0.0


def test_auxiliary_io_separated():
    """The paper excludes B-tree costs from its graphs; we track both."""
    ops = OperationStats()
    ops.record_update(4)
    ops.record_auxiliary(4)
    assert ops.avg_update_io == 4.0
    assert ops.avg_update_io_with_auxiliary == 8.0
