"""Tests for the durable page file and FilePageStore."""

import pytest

from repro.core.clock import SimulationClock
from repro.geometry.kinematics import MovingPoint
from repro.rstar.node import Node
from repro.storage.disk import DiskManager, PageError
from repro.storage.faults import FaultInjector, TransientIOError
from repro.storage.layout import EntryLayout
from repro.storage.pagefile import (
    PAGES_FILENAME,
    FilePageStore,
    PageFile,
    PageFileError,
    layout_flags,
    read_header,
)
from repro.storage.serial import NodeCodec

LAYOUT = EntryLayout(page_size=512, dims=2)


def make_store(tmp_path, name="store"):
    clock = SimulationClock()
    store = FilePageStore.create(
        str(tmp_path / name), LAYOUT, clock.now
    )
    return store, clock


def leaf_page(codec, t_ref=0.0, t_exp=100.0):
    point = MovingPoint((1.0, 2.0), (0.1, -0.1), t_ref, t_exp)
    return codec.encode(Node(0, [(point, 7)]), t_ref)


# -- page file ----------------------------------------------------------------


def test_create_then_open_round_trips_header(tmp_path):
    path = str(tmp_path / PAGES_FILENAME)
    pf = PageFile.create(path, 512, 2, layout_flags(LAYOUT))
    header = pf.read_header()
    header.root_pid = 3
    header.clock_time = 12.5
    pf.write_header(header)
    pf.close()
    reopened = PageFile.open(path)
    header = reopened.read_header()
    assert header.page_size == 512
    assert header.dims == 2
    assert header.root_pid == 3
    assert header.clock_time == 12.5
    reopened.close()


def test_open_rejects_bad_magic(tmp_path):
    path = str(tmp_path / PAGES_FILENAME)
    with open(path, "wb") as handle:
        handle.write(b"NOTMAGIC" + bytes(512))
    with pytest.raises(PageFileError):
        PageFile.open(path)


def test_open_rejects_corrupt_header_crc(tmp_path):
    path = str(tmp_path / PAGES_FILENAME)
    pf = PageFile.create(path, 512, 2, layout_flags(LAYOUT))
    pf.close()
    with open(path, "r+b") as handle:
        handle.seek(10)
        byte = handle.read(1)
        handle.seek(10)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(PageFileError):
        PageFile.open(path)


def test_slot_crc_detects_corruption(tmp_path):
    path = str(tmp_path / PAGES_FILENAME)
    pf = PageFile.create(path, 512, 2, layout_flags(LAYOUT))
    codec = NodeCodec(LAYOUT)
    pf.write_page(0, leaf_page(codec))
    slot = pf.read_slot(0)
    assert slot.crc_ok
    # Flip one payload byte on disk: the footer CRC must catch it.
    with open(path, "r+b") as handle:
        handle.seek(pf.slot_size + 5)
        byte = handle.read(1)
        handle.seek(pf.slot_size + 5)
        handle.write(bytes([byte[0] ^ 0x01]))
    pf2 = PageFile.open(path)
    assert not pf2.read_slot(0).crc_ok
    pf2.close()
    pf.abandon()


def test_read_header_probe(tmp_path):
    store, _ = make_store(tmp_path)
    store.close()
    header = read_header(str(tmp_path / "store"))
    assert header.page_size == 512
    assert header.store_velocities
    assert header.store_leaf_expiration
    assert header.store_br_expiration == LAYOUT.store_br_expiration


# -- IOStats identity with the simulated disk ---------------------------------


def drive(disk):
    """One fixed allocation/write/read/free script against a store."""
    a = disk.allocate()
    b, c = disk.allocate_many(2)
    disk.write(a, disk_payload(disk, 0.0))
    disk.write(b, disk_payload(disk, 1.0))
    disk.read(a)
    disk.peek(b)  # never charged
    disk.free(c)
    d = disk.allocate()  # recycles c
    disk.write(d, disk_payload(disk, 2.0))
    disk.read(d)
    return disk.stats.snapshot()


def disk_payload(disk, x):
    return Node(0, [(MovingPoint((x, x), (0.0, 0.0), 0.0, 50.0), int(x))])


def test_filepagestore_charges_identical_iostats(tmp_path):
    simulated = DiskManager(page_size=512)
    durable, _ = make_store(tmp_path)
    want = drive(simulated)
    got = drive(durable)
    durable.abandon()
    assert got == want
    assert (got.reads, got.writes) == (2, 3)
    assert (got.allocations, got.frees) == (4, 1)


def test_allocate_recycles_freed_ids_lifo(tmp_path):
    store, _ = make_store(tmp_path)
    pids = [store.allocate() for _ in range(3)]
    store.free(pids[0])
    store.free(pids[2])
    assert store.allocate() == pids[2]
    assert store.allocate() == pids[0]
    store.abandon()


def test_read_unallocated_raises(tmp_path):
    store, _ = make_store(tmp_path)
    with pytest.raises(PageError):
        store.read(99)
    with pytest.raises(PageError):
        store.free(99)
    store.abandon()


# -- durability round trip ----------------------------------------------------


def test_commit_then_reopen_restores_pages(tmp_path):
    store, clock = make_store(tmp_path)
    codec = store.codec
    pid = store.allocate()
    store.write(pid, codec.decode(leaf_page(codec))[0])
    store.set_root(pid)
    store.commit()
    store.close()

    clock2 = SimulationClock()
    reopened = FilePageStore.open_dir(
        str(tmp_path / "store"), LAYOUT, clock2.now
    )
    assert reopened.root_pid == pid
    assert reopened.is_allocated(pid)
    node = reopened.peek(pid)
    assert len(node) == 1 and node.entries[0][1] == 7
    reopened.close()


def test_open_without_committed_root_raises(tmp_path):
    store, _ = make_store(tmp_path)
    store.abandon()  # nothing was ever committed
    with pytest.raises(PageFileError):
        FilePageStore.open_dir(
            str(tmp_path / "store"), LAYOUT, SimulationClock().now
        )


def test_open_rejects_mismatched_layout(tmp_path):
    store, _ = make_store(tmp_path)
    pid = store.allocate()
    store.write(pid, disk_payload(store, 0.0))
    store.set_root(pid)
    store.commit()
    store.close()
    other = EntryLayout(page_size=4096, dims=2)
    with pytest.raises(PageFileError):
        FilePageStore.open_dir(
            str(tmp_path / "store"), other, SimulationClock().now
        )


def test_create_refuses_existing_store(tmp_path):
    store, _ = make_store(tmp_path)
    store.close()
    with pytest.raises(PageFileError):
        FilePageStore.create(
            str(tmp_path / "store"), LAYOUT, SimulationClock().now
        )


def test_free_list_survives_reopen(tmp_path):
    store, _ = make_store(tmp_path)
    pids = [store.allocate() for _ in range(4)]
    for pid in pids:
        store.write(pid, disk_payload(store, float(pid)))
    store.set_root(pids[0])
    store.commit()
    store.free(pids[2])
    store.commit()
    store.close()

    reopened = FilePageStore.open_dir(
        str(tmp_path / "store"), LAYOUT, SimulationClock().now
    )
    assert not reopened.is_allocated(pids[2])
    assert reopened.allocate() == pids[2]
    reopened.abandon()


def test_op_seq_advances_once_per_commit(tmp_path):
    store, _ = make_store(tmp_path)
    base = store.op_seq
    store.commit()  # nothing staged: no-op
    assert store.op_seq == base
    pid = store.allocate()
    store.write(pid, disk_payload(store, 0.0))
    store.commit()
    assert store.op_seq == base + 1
    store.abandon()


# -- transient faults, pending commits, idempotent shutdown -------------------


def test_transient_commit_stays_pending_and_retries(tmp_path):
    store, clock = make_store(tmp_path, "pending")
    pid = store.allocate()
    store.write(pid, disk_payload(store, 3.0))
    store.set_root(pid)
    store.commit()
    base = store.op_seq
    store.write(pid, disk_payload(store, 7.0))
    # The very next physical write (the WAL append of the batch) fails.
    store.arm_injector(FaultInjector(transient_writes={1}))
    with pytest.raises(TransientIOError):
        store.commit()
    assert store.op_seq == base, "a faulted commit must not advance op_seq"
    # Re-driving the pending batch succeeds and commits exactly once.
    store.commit()
    assert store.op_seq == base + 1
    store.close()
    reopened = FilePageStore.open_dir(
        str(tmp_path / "pending"), LAYOUT, SimulationClock().now
    )
    assert reopened.peek(pid).entries[0][1] == 7
    reopened.abandon()


def test_close_and_checkpoint_are_idempotent(tmp_path):
    store, clock = make_store(tmp_path, "idem")
    pid = store.allocate()
    store.write(pid, disk_payload(store, 1.0))
    store.set_root(pid)
    store.close()
    assert store.closed
    store.close()       # a second close is a no-op
    store.checkpoint()  # so is a checkpoint on a closed store
    assert store.closed


def test_close_tolerates_transient_fault_and_reopen_recovers(tmp_path):
    store, clock = make_store(tmp_path, "tclose")
    pid = store.allocate()
    store.write(pid, disk_payload(store, 5.0))
    store.set_root(pid)
    store.commit()
    store.write(pid, disk_payload(store, 9.0))  # staged, never committed
    store.arm_injector(FaultInjector(transient_writes={1}))
    store.close()  # swallows the transient fault; handles are released
    assert store.closed
    reopened = FilePageStore.open_dir(
        str(tmp_path / "tclose"), LAYOUT, SimulationClock().now
    )
    # Only the committed image survives; the interrupted tail is lost,
    # exactly as if the process had stopped one operation earlier.
    assert reopened.peek(pid).entries[0][1] == 5
    reopened.abandon()
