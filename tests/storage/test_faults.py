"""Tests for the deterministic fault injector."""

import pytest

from repro.storage.faults import (
    MODES,
    FaultInjector,
    SimulatedCrash,
    TransientIOError,
)


def test_counting_mode_never_crashes():
    injector = FaultInjector()
    for i in range(100):
        assert injector.before_write(b"data") == b"data"
        injector.after_write()
    assert injector.writes == 100
    assert not injector.crashed


def test_kill_raises_before_the_nth_write():
    injector = FaultInjector(crash_at_write=3, mode="kill")
    for _ in range(2):
        injector.before_write(b"data")
        injector.after_write()
    with pytest.raises(SimulatedCrash):
        injector.before_write(b"data")
    assert injector.crashed


def test_torn_write_truncates_then_crashes():
    injector = FaultInjector(crash_at_write=1, mode="torn", seed=5)
    data = bytes(range(200))
    torn = injector.before_write(data)
    assert 0 < len(torn) < len(data)
    assert torn == data[:len(torn)]
    with pytest.raises(SimulatedCrash):
        injector.after_write()


def test_bitflip_flips_exactly_one_bit():
    injector = FaultInjector(crash_at_write=1, mode="bitflip", seed=5)
    data = bytes(200)
    flipped = injector.before_write(data)
    assert len(flipped) == len(data)
    diff = [i for i in range(len(data)) if flipped[i] != data[i]]
    assert len(diff) == 1
    assert bin(flipped[diff[0]]).count("1") == 1
    with pytest.raises(SimulatedCrash):
        injector.after_write()


def test_crashed_injector_rejects_further_writes():
    injector = FaultInjector(crash_at_write=1, mode="kill")
    with pytest.raises(SimulatedCrash):
        injector.before_write(b"x")
    with pytest.raises(SimulatedCrash):
        injector.before_write(b"y")


def test_determinism_same_seed_same_tear():
    a = FaultInjector(crash_at_write=1, mode="torn", seed=11)
    b = FaultInjector(crash_at_write=1, mode="torn", seed=11)
    data = bytes(500)
    assert a.before_write(data) == b.before_write(data)


def test_mode_validation():
    assert set(MODES) == {"kill", "torn", "bitflip"}
    with pytest.raises(ValueError):
        FaultInjector(crash_at_write=1, mode="meteor")


# -- transient schedules ------------------------------------------------------


def test_transient_write_schedule_fires_once_per_index():
    injector = FaultInjector(transient_writes={2, 4})
    assert injector.before_write(b"a") == b"a"
    with pytest.raises(TransientIOError):
        injector.before_write(b"b")
    assert injector.before_write(b"c") == b"c"
    with pytest.raises(TransientIOError):
        injector.before_write(b"d")
    # The counter has passed both indices: nothing ever fires again.
    for _ in range(10):
        assert injector.before_write(b"e") == b"e"
    assert injector.writes == 14
    assert not injector.crashed, "transient faults must not kill the process"


def test_transient_reads_counted_only_while_armed():
    injector = FaultInjector(transient_reads={2})
    injector.before_read()  # armed: guarded read #1
    injector.reads_armed = False
    for _ in range(5):
        injector.before_read()  # disarmed: neither counted nor faulted
    assert injector.reads == 1
    injector.reads_armed = True
    with pytest.raises(TransientIOError):
        injector.before_read()  # guarded read #2 fires the fault
    assert injector.reads == 2


def test_transient_schedule_validation():
    with pytest.raises(ValueError):
        FaultInjector(transient_writes={0})
    with pytest.raises(ValueError):
        FaultInjector(transient_reads={-1})
