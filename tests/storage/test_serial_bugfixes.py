"""Regression tests for the PR-7 serialization-correctness sweep.

Four bugs, each with a test that failed before its fix:

1. ``NodeCodec.decode`` silently "repaired" *any* inverted internal
   bound via ``max(l, h)`` — a bit-flipped page shrank answer sets
   instead of surfacing.  Now only inversions within binary32 rounding
   tolerance are repaired (and counted); larger ones raise
   :class:`CodecError`.
2. Binary32 narrowing of ``t_exp`` could round *down*, so a live
   object could be treated as expired after WAL recovery.  Expirations
   now round toward +inf.
3. The page codec packs oids as u32 while the shard wire format uses
   i64; out-of-range oids used to die as a ``struct.error`` deep in a
   commit.  Trees now validate at insert time against
   ``EntryLayout.max_oid``.
4. The old ``_widen`` helper was a no-op (binary32→binary64 conversion
   is exact); it is gone, and a property test pins the exact-widening
   contract it pretended to provide.
"""

import math
import random
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clock import SimulationClock
from repro.core.presets import rexp_config
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import TimesliceQuery
from repro.geometry.rect import Rect
from repro.geometry.tpbr import TPBR
from repro.obs import MetricsRegistry
from repro.rstar.node import Node
from repro.storage import serial
from repro.storage.layout import NODE_HEADER_BYTES, EntryLayout
from repro.storage.serial import CodecError, NodeCodec

CONFIG_KW = dict(page_size=1024, buffer_pages=8, default_ui=10.0)

#: A value binary32 rounds *down* (float32(100.1) == 100.09999847...).
DOWN_ROUNDER = 100.1


def internal_codec():
    return NodeCodec(EntryLayout(page_size=1024, store_br_expiration=True))


def internal_page(codec, lo=(10.0, 20.0), hi=(30.0, 40.0)):
    br = TPBR(lo, hi, (-1.0, -1.0), (1.0, 1.0), 0.0, 50.0)
    return bytearray(codec.encode(Node(1, [(br, 7)]), t_ref=0.0))


def patch_hi0(page, value):
    """Overwrite the entry's first upper-bound field in place."""
    dims = 2
    struct.pack_into("<f", page, NODE_HEADER_BYTES + dims * 4, value)


# -- bugfix 1: corrupt inversions raise, rounding-level ones repair -----------


def test_bitflip_inversion_raises_codec_error():
    codec = internal_codec()
    page = internal_page(codec)
    # Flip the sign bit of hi[0]: 30.0 becomes -30.0, far below lo[0].
    offset = NODE_HEADER_BYTES + 2 * 4 + 3
    page[offset] ^= 0x80
    with pytest.raises(CodecError, match="corrupt internal entry"):
        codec.decode(bytes(page))
    assert codec.repairs == 0


def test_bitflip_inversion_raises_on_struct_path(monkeypatch):
    codec = internal_codec()
    page = internal_page(codec)
    patch_hi0(page, -1000.0)
    monkeypatch.setattr(serial, "np", None)
    fallback = NodeCodec(codec.layout)
    with pytest.raises(CodecError, match="corrupt internal entry"):
        fallback.decode(bytes(page))


def test_rounding_level_inversion_is_repaired_and_counted():
    codec = internal_codec()
    registry = MetricsRegistry()
    codec.bind_repair_counter(registry.counter("codec.bound_repairs"))
    page = internal_page(codec, lo=(1.0, 20.0), hi=(1.0, 40.0))
    # One binary32 ulp below 1.0: within the rounding tolerance.
    below = struct.unpack("<f", struct.pack("<I", 0x3F7FFFFF))[0]
    assert 0.0 < 1.0 - below < 2.0 ** -22
    patch_hi0(page, below)
    node, _ = codec.decode(bytes(page))
    br, _ = node.entries[0]
    assert br.lo[0] == br.hi[0] == 1.0
    assert codec.repairs == 1
    assert registry.counter("codec.bound_repairs").value == 1


def test_rounding_level_inversion_repairs_on_struct_path(monkeypatch):
    codec = internal_codec()
    page = internal_page(codec, lo=(1.0, 20.0), hi=(1.0, 40.0))
    below = struct.unpack("<f", struct.pack("<I", 0x3F7FFFFF))[0]
    patch_hi0(page, below)
    monkeypatch.setattr(serial, "np", None)
    fallback = NodeCodec(codec.layout)
    node, _ = fallback.decode(bytes(page))
    assert node.entries[0][0].hi[0] == 1.0
    assert fallback.repairs == 1


# -- bugfix 2: expirations round toward +inf ----------------------------------


def test_down_rounding_expiration_round_trips_at_or_above():
    codec = NodeCodec(EntryLayout(page_size=1024))
    point = MovingPoint((1.0, 2.0), (0.0, 0.0), 0.0, DOWN_ROUNDER)
    node, _ = codec.decode(codec.encode(Node(0, [(point, 1)]), t_ref=0.0))
    assert node.entries[0][0].t_exp >= DOWN_ROUNDER


def test_live_object_survives_recovery_despite_down_rounding(tmp_path):
    """The user-visible symptom: a live object vanished after reopen."""
    nearest = struct.unpack("<f", struct.pack("<f", DOWN_ROUNDER))[0]
    assert nearest < DOWN_ROUNDER  # the premise: binary32 rounds down
    probe_t = (nearest + DOWN_ROUNDER) / 2.0  # past the old bound, live
    directory = str(tmp_path / "store")
    config = rexp_config(**CONFIG_KW)
    tree = MovingObjectTree.create_durable(
        directory, config, SimulationClock()
    )
    tree.insert(5, MovingPoint((50.0, 50.0), (0.0, 0.0), 0.0, DOWN_ROUNDER))
    tree.close()
    reopened = MovingObjectTree.open_from(
        directory, config, SimulationClock()
    )
    try:
        query = TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), probe_t)
        assert reopened.query(query) == [5]
    finally:
        reopened.close()


def test_round_up_never_under_covers_scalar_helper():
    for value in (DOWN_ROUNDER, 0.1, 1e30, -3.7, 5e-40, -0.0, 0.0, 2.5):
        widened = serial._f32_round_up(value)
        assert widened >= value
        # Exactly representable in binary32 (pack/unpack is identity).
        assert struct.unpack("<f", struct.pack("<f", widened))[0] == widened
    assert serial._f32_round_up(math.inf) == math.inf
    assert serial._f32_round_up(1e39) == math.inf  # beyond binary32 range


# -- bugfix 3: oid range validated at insert time -----------------------------


def test_max_oid_matches_u32_page_field():
    assert EntryLayout(page_size=1024).max_oid == 2 ** 32 - 1


def test_boundary_oid_persists_and_recovers(tmp_path):
    directory = str(tmp_path / "store")
    config = rexp_config(**CONFIG_KW)
    tree = MovingObjectTree.create_durable(
        directory, config, SimulationClock()
    )
    boundary = 2 ** 32 - 1
    tree.insert(boundary, MovingPoint((1.0, 1.0), (0.0, 0.0), 0.0, 50.0))
    tree.checkpoint()
    tree.close()
    reopened = MovingObjectTree.open_from(
        directory, config, SimulationClock()
    )
    try:
        query = TimesliceQuery(Rect((0.0, 0.0), (10.0, 10.0)), 1.0)
        assert reopened.query(query) == [boundary]
    finally:
        reopened.close()


@pytest.mark.parametrize("oid", [2 ** 32, -1])
def test_out_of_range_oid_fails_fast_with_clear_error(oid):
    tree = MovingObjectTree(rexp_config(**CONFIG_KW), SimulationClock())
    point = MovingPoint((1.0, 1.0), (0.0, 0.0), 0.0, 50.0)
    with pytest.raises(ValueError, match="32-bit"):
        tree.insert(oid, point)
    with pytest.raises(ValueError, match="32-bit"):
        tree.bulk_load([(point, oid)])


# -- bugfix 4: exact widening, no-op helper removed ---------------------------


def test_widen_helper_is_gone():
    assert not hasattr(serial, "_widen")


@given(
    t_exp=st.one_of(
        st.floats(min_value=0.0, allow_nan=False),
        st.sampled_from([5e-324, 1.5e-45, 0.0, -0.0, math.inf, DOWN_ROUNDER]),
    )
)
def test_expiration_round_trip_widens_exactly(t_exp):
    codec = NodeCodec(EntryLayout(page_size=1024))
    point = MovingPoint((1.0, 2.0), (0.0, 0.0), -0.0 if t_exp == 0 else 0.0,
                        t_exp if t_exp >= 0.0 else 0.0)
    node, _ = codec.decode(codec.encode(Node(0, [(point, 3)]), t_ref=0.0))
    decoded = node.entries[0][0].t_exp
    # Never under-covers the true expiration...
    assert decoded >= point.t_exp
    # ...and the binary32→binary64 widening is exact: the decoded value
    # is itself representable in binary32 (no double rounding).
    if math.isfinite(decoded):
        assert struct.unpack("<f", struct.pack("<f", decoded))[0] == decoded
    # At most one binary32 ulp of over-coverage.
    if math.isfinite(point.t_exp) and point.t_exp <= serial._F32_MAX:
        down = struct.unpack("<f", struct.pack("<f", point.t_exp))[0]
        if down >= point.t_exp:
            assert decoded == max(down, 0.0)


# -- zero-copy decode vs struct loop over a real persisted tree ---------------


def _build_real_tree(entries=500, seed=0):
    clock = SimulationClock()
    config = rexp_config(**CONFIG_KW)
    tree = MovingObjectTree(config, clock)
    rng = random.Random(seed)
    t = 0.0
    for oid in range(entries):
        t += 0.02
        clock.advance_to(t)
        tree.insert(oid, MovingPoint(
            (rng.uniform(0, 100), rng.uniform(0, 100)),
            (rng.uniform(-2, 2), rng.uniform(-2, 2)),
            t, t + rng.uniform(1, 50),
        ))
    return tree, clock


def test_zero_copy_decode_matches_struct_loop():
    if serial.np is None:
        pytest.skip("numpy unavailable")
    tree, clock = _build_real_tree()
    config = rexp_config(**CONFIG_KW)
    fast = NodeCodec(config.layout())
    slow = NodeCodec(config.layout())
    slow._leaf_dtype = slow._internal_dtype = None  # forces struct loop
    pages = 0
    for pid in tree.disk.page_ids():
        page = fast.encode(tree.disk.peek(pid), t_ref=clock.time)
        got, got_ref = fast.decode(page)
        want, want_ref = slow.decode(page)
        assert got_ref == want_ref
        assert got.level == want.level
        assert got.entries == want.entries  # frozen dataclasses: bitwise
        pages += 1
    assert pages > 1  # a real multi-page tree, not a single root


def test_zero_copy_decode_prepopulates_soa_cache():
    if serial.np is None:
        pytest.skip("numpy unavailable")
    tree, clock = _build_real_tree()
    config = rexp_config(**CONFIG_KW)
    codec = NodeCodec(config.layout())
    cached = 0
    for pid in tree.disk.page_ids():
        node = tree.disk.peek(pid)
        decoded, _ = codec.decode(codec.encode(node, t_ref=clock.time))
        if len(node) >= serial._SOA_MIN_ENTRIES:
            assert decoded.soa is not None
            cached += 1
        else:
            assert decoded.soa is None
    assert cached > 0
