"""Tests for the write-ahead log, scan, and recovery."""

import os
import struct

import pytest

from repro.core.clock import SimulationClock
from repro.geometry.kinematics import MovingPoint
from repro.rstar.node import Node
from repro.storage.layout import EntryLayout
from repro.storage.pagefile import FilePageStore
from repro.storage.wal import (
    _COMMIT,
    CHECKPOINT_RECORD,
    COMMIT_RECORD,
    PAGE_RECORD,
    WalError,
    WriteAheadLog,
    _skippable,
    scan_wal,
)

LAYOUT = EntryLayout(page_size=512, dims=2)


def leaf(t_ref, t_exp, oid=1):
    point = MovingPoint((1.0, 2.0), (0.1, -0.1), t_ref, t_exp)
    return Node(0, [(point, oid)])


# -- log append and scan ------------------------------------------------------


def test_append_scan_round_trip(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_page(3, b"\xab" * 512)
    wal.append_free(7)
    wal.append_commit(1, 2.5)
    wal.flush()
    wal.close()

    records, valid, torn = scan_wal(path)
    assert torn == 0
    assert valid == os.path.getsize(path)
    assert [r.kind for r in records] == [PAGE_RECORD, 2, COMMIT_RECORD]
    assert [r.lsn for r in records] == [0, 1, 2]
    assert records[0].page_id == 3
    assert records[0].page_bytes == b"\xab" * 512
    assert records[1].page_id == 7
    assert records[2].op_seq == 1
    assert records[2].clock_time == 2.5


def test_scan_missing_file_is_empty(tmp_path):
    records, valid, torn = scan_wal(str(tmp_path / "nope"))
    assert records == [] and valid == 0 and torn == 0


def test_scan_stops_at_torn_tail(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_page(1, b"x" * 512)
    wal.append_commit(1, 0.0)
    wal.append_page(2, b"y" * 512)
    wal.flush()
    wal.close()
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 100)  # tear the last record

    records, valid, torn = scan_wal(path)
    assert [r.kind for r in records] == [PAGE_RECORD, COMMIT_RECORD]
    assert torn > 0
    assert valid + torn == size - 100


def test_scan_stops_at_corrupt_crc(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_page(1, b"x" * 64)
    wal.append_page(2, b"y" * 64)
    wal.flush()
    wal.close()
    records, valid, _ = scan_wal(path)
    second_start = valid - (valid // 2)
    with open(path, "r+b") as handle:
        handle.seek(valid - 10)
        byte = handle.read(1)
        handle.seek(valid - 10)
        handle.write(bytes([byte[0] ^ 0xFF]))
    records, _, torn = scan_wal(path)
    assert len(records) == 1
    assert torn > 0
    assert second_start  # silence unused warning


def test_reopen_continues_lsn_after_torn_tail(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_page(1, b"x" * 32)
    wal.append_commit(1, 0.0)
    wal.flush()
    wal.close()
    with open(path, "ab") as handle:
        handle.write(b"\x01garbage-torn-tail")

    wal2 = WriteAheadLog(path)
    wal2.append_page(2, b"y" * 32)
    wal2.flush()
    wal2.close()
    records, _, torn = scan_wal(path)
    assert torn == 0  # reopen truncated the garbage
    assert [r.lsn for r in records] == [0, 1, 2]


def test_reset_leaves_single_checkpoint_record(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    for i in range(5):
        wal.append_page(i, bytes(16))
    wal.append_commit(3, 9.0)
    wal.flush()
    wal.reset(3, 9.0)
    wal.close()
    records, _, torn = scan_wal(path)
    assert torn == 0
    assert len(records) == 1
    assert records[0].kind == CHECKPOINT_RECORD
    assert records[0].op_seq == 3
    assert records[0].clock_time == 9.0


def test_append_charges_one_write_per_record(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"))
    wal.append_page(1, bytes(32))
    wal.append_free(2)
    wal.append_commit(1, 0.0)
    assert wal.stats.writes == 3
    assert wal.stats.reads == 0
    wal.close()


# -- recovery -----------------------------------------------------------------


def make_store(tmp_path, clock):
    return FilePageStore.create(str(tmp_path / "store"), LAYOUT, clock.now)


def reopen(tmp_path, clock):
    return FilePageStore.open_dir(str(tmp_path / "store"), LAYOUT, clock.now)


def test_uncommitted_tail_is_discarded(tmp_path):
    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 100.0, oid=1))
    store.set_root(a)
    store.commit()
    # Stage a second change but tear the log before its commit record.
    store.write(a, leaf(0.0, 100.0, oid=2))
    store.wal.append_page(a, store.codec.encode(leaf(0.0, 100.0, oid=2), 0.0))
    store.wal.flush()
    store.abandon()

    recovered = reopen(tmp_path, SimulationClock())
    assert recovered.recovery.commits_applied == 1
    assert recovered.peek(a).entries[0][1] == 1  # the committed image
    recovered.abandon()


def test_recovery_skips_expired_pages(tmp_path):
    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 10.0))  # expires at t=10
    store.set_root(a)
    store.commit()  # commit 1 at clock 0
    clock.advance_to(50.0)
    b = store.allocate()
    store.write(b, leaf(50.0, 100.0))
    store.commit()  # commit 2 at clock 50: recovery time is 50
    store.abandon()  # crash without checkpoint

    recovered = reopen(tmp_path, SimulationClock())
    report = recovered.recovery
    # Page A's logged image is all-expired at recovery time and the
    # on-disk slot already holds an intact all-expired leaf: TR-82 says
    # replay would restore dead data, so it is skipped and counted.
    assert report.wal_skipped_expired == 1
    assert a in report.skipped_pids
    assert report.commits_applied == 2
    assert recovered.is_allocated(a) and recovered.is_allocated(b)
    assert recovered.peek(b).entries[0][1] == 1
    recovered.abandon()


def test_recovery_replays_live_pages(tmp_path):
    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 1000.0))  # far from expiring
    store.set_root(a)
    store.commit()
    clock.advance_to(50.0)
    store.write(a, leaf(50.0, 1000.0, oid=9))
    store.commit()
    store.abandon()

    recovered = reopen(tmp_path, SimulationClock())
    assert recovered.recovery.wal_skipped_expired == 0
    assert recovered.recovery.pages_replayed >= 1
    assert recovered.peek(a).entries[0][1] == 9
    recovered.abandon()


def test_recovery_restores_clock_from_last_commit(tmp_path):
    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 1000.0))
    store.set_root(a)
    store.commit()
    clock.advance_to(33.25)
    store.write(a, leaf(33.25, 1000.0))
    store.commit()
    store.abandon()

    recovered = reopen(tmp_path, SimulationClock())
    assert recovered.opened_clock_time == 33.25
    recovered.abandon()


def test_recovery_counters_reach_registry(tmp_path):
    from repro.obs import MetricsRegistry

    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 1000.0))
    store.set_root(a)
    store.commit()
    store.abandon()

    registry = MetricsRegistry()
    recovered = FilePageStore.open_dir(
        str(tmp_path / "store"), LAYOUT, SimulationClock().now,
        registry=registry,
    )
    assert registry.get("wal.commits_applied").value == 1
    assert registry.get("wal_skipped_expired").value == 0
    recovered.abandon()


# -- the recovery skip rule's exception contract ------------------------------
#
# ``_skippable`` evaluates the all-expired predicate over raw logged
# bytes.  Decode/IO failures (OSError, ValueError, struct.error) mean
# "cannot prove the page is all-expired" and must make recovery replay
# the image verbatim; any *other* exception is a bug in the predicate
# and must propagate instead of being silently treated as unskippable.


def test_skippable_decode_errors_mean_replay():
    def undecodable(data, now):
        raise ValueError("garbage page image")

    assert _skippable(None, 0, b"\x00" * 16, 0.0, undecodable) is False


def test_skippable_struct_errors_mean_replay():
    def truncated(data, now):
        struct.unpack("<Q", data)  # wrong size: struct.error
        return True

    assert _skippable(None, 0, b"\x00", 0.0, truncated) is False


def test_skippable_unexpected_errors_propagate():
    def buggy(data, now):
        raise RuntimeError("defect in the predicate itself")

    with pytest.raises(RuntimeError):
        _skippable(None, 0, b"\x00" * 16, 0.0, buggy)


def test_skippable_assertion_errors_propagate():
    def asserting(data, now):
        assert False, "invariant violated"

    with pytest.raises(AssertionError):
        _skippable(None, 0, b"\x00" * 16, 0.0, asserting)


# -- torn-tail truncation durability ------------------------------------------


def test_reopen_fsyncs_the_truncated_torn_tail(tmp_path, monkeypatch):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_page(1, b"x" * 32)
    wal.append_commit(1, 0.0)
    wal.flush()
    wal.close()
    with open(path, "ab") as handle:
        handle.write(b"\x01torn-garbage")

    synced = []
    real_fsync = os.fsync

    def spy(fd):
        synced.append(fd)
        real_fsync(fd)

    monkeypatch.setattr("repro.storage.wal.os.fsync", spy)
    # Reopening truncates the torn tail; the cut must reach media
    # before any append, or a crash could resurrect the garbage bytes
    # underneath freshly appended records.
    wal2 = WriteAheadLog(path)
    assert synced, "torn-tail truncation was not fsynced at reopen"
    wal2.append_page(2, b"y" * 32)
    wal2.flush()
    wal2.close()
    records, _, torn = scan_wal(path)
    assert torn == 0
    assert [r.lsn for r in records] == [0, 1, 2]


def test_clean_reopen_skips_the_truncate_fsync(tmp_path, monkeypatch):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    wal.append_page(1, b"x" * 32)
    wal.append_commit(1, 0.0)
    wal.flush()
    wal.close()

    synced = []
    monkeypatch.setattr("repro.storage.wal.os.fsync", synced.append)
    WriteAheadLog(path).close()
    # No torn bytes were cut, so there is nothing to make durable: the
    # fsync is gated on an actual tear, not issued on every open.
    assert synced == []


# -- recovery edge cases ------------------------------------------------------


def test_recovery_rejects_checkpoint_inside_open_batch(tmp_path):
    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 100.0))
    store.set_root(a)
    store.commit()
    # Corrupt the protocol: a checkpoint record lands between a page
    # record and its commit.  Recovery must refuse to guess.
    store.wal.append_page(a, store.codec.encode(leaf(0.0, 100.0), 0.0))
    store.wal.append_raw(CHECKPOINT_RECORD, _COMMIT.pack(9, 1.0))
    store.wal.flush()
    store.abandon()
    with pytest.raises(WalError):
        reopen(tmp_path, SimulationClock())


def test_checkpoint_only_log_restores_op_seq_and_clock(tmp_path):
    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 100.0))
    store.set_root(a)
    store.commit()
    clock.advance_to(12.5)
    store.checkpoint()
    committed = store.op_seq
    store.abandon()  # crash right after the checkpoint

    recovered = reopen(tmp_path, SimulationClock())
    # The log holds nothing but the checkpoint record, which alone
    # asserts how far history reached and when.
    assert recovered.recovery.commits_applied == 0
    assert recovered.recovery.checkpoint_seen
    assert recovered.op_seq == committed
    assert recovered.opened_clock_time == 12.5
    assert recovered.peek(a).entries[0][1] == 1
    recovered.abandon()


def test_commit_record_torn_mid_write_discards_the_batch(tmp_path):
    clock = SimulationClock()
    store = make_store(tmp_path, clock)
    a = store.allocate()
    store.write(a, leaf(0.0, 100.0, oid=1))
    store.set_root(a)
    store.commit()
    store.write(a, leaf(0.0, 100.0, oid=2))
    store.commit()
    wal_path = store.wal.path
    store.abandon()
    size = os.path.getsize(wal_path)
    with open(wal_path, "r+b") as handle:
        handle.truncate(size - 4)  # tear inside the second COMMIT record

    records, _valid, torn = scan_wal(wal_path)
    assert torn > 0
    assert records[-1].kind == PAGE_RECORD  # the half commit is gone
    recovered = reopen(tmp_path, SimulationClock())
    # A batch whose commit record did not fully reach the log never
    # happened: the first committed image wins.
    assert recovered.recovery.commits_applied == 1
    assert recovered.peek(a).entries[0][1] == 1
    recovered.abandon()
