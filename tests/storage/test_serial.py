"""Tests for byte-level node serialization."""

import math
import random

import pytest

from repro.core.clock import SimulationClock
from repro.core.presets import rexp_config
from repro.core.tree import MovingObjectTree
from repro.geometry.kinematics import MovingPoint
from repro.geometry.tpbr import TPBR
from repro.rstar.node import Node
from repro.storage.layout import EntryLayout
from repro.storage.serial import CodecError, NodeCodec

F32_REL = 1e-6


def default_codec(**layout_kwargs):
    return NodeCodec(EntryLayout(page_size=1024, **layout_kwargs))


def test_empty_node_round_trip():
    codec = default_codec()
    page = codec.encode(Node(0), t_ref=5.0)
    assert len(page) == 1024
    node, t_ref = codec.decode(page)
    assert node.is_leaf and len(node) == 0
    assert t_ref == 5.0


def test_leaf_round_trip_rebases_reference_time():
    codec = default_codec()
    p = MovingPoint((10.0, 20.0), (1.5, -0.5), t_ref=2.0, t_exp=30.0)
    node = Node(0, [(p, 42)])
    decoded, t_ref = codec.decode(codec.encode(node, t_ref=4.0))
    q, oid = decoded.entries[0]
    assert oid == 42
    assert t_ref == 4.0
    # Same trajectory, expressed at the node reference time.
    for t in (4.0, 10.0, 30.0):
        for d in range(2):
            assert q.coordinate_at(d, t) == pytest.approx(
                p.coordinate_at(d, t), rel=F32_REL, abs=1e-4
            )
    assert q.t_exp == pytest.approx(30.0, rel=F32_REL)


def test_leaf_infinite_expiration_survives():
    codec = default_codec()
    p = MovingPoint((1.0, 2.0), (0.0, 0.0), 0.0, math.inf)
    decoded, _ = codec.decode(codec.encode(Node(0, [(p, 1)]), 0.0))
    assert math.isinf(decoded.entries[0][0].t_exp)


def test_internal_round_trip():
    codec = default_codec(store_br_expiration=True)
    br = TPBR((0.0, 1.0), (4.0, 5.0), (-1.0, 0.0), (1.0, 2.0), 3.0, 17.0)
    decoded, _ = codec.decode(codec.encode(Node(2, [(br, 9)]), t_ref=3.0))
    got, child = decoded.entries[0]
    assert child == 9
    assert decoded.level == 2
    for t in (3.0, 10.0, 17.0):
        for d in range(2):
            assert got.lower_at(d, t) == pytest.approx(
                br.lower_at(d, t), rel=F32_REL, abs=1e-4
            )
            assert got.upper_at(d, t) == pytest.approx(
                br.upper_at(d, t), rel=F32_REL, abs=1e-4
            )
    assert got.t_exp == pytest.approx(17.0, rel=F32_REL)


def test_static_layout_drops_velocities():
    codec = default_codec(store_velocities=False)
    br = TPBR((0.0, 1.0), (4.0, 5.0), (0.0, 0.0), (0.0, 0.0), 0.0, 9.0)
    decoded, _ = codec.decode(codec.encode(Node(1, [(br, 3)]), 0.0))
    got, _ = decoded.entries[0]
    assert got.vlo == got.vhi == (0.0, 0.0)


def test_unstored_expiration_decodes_as_infinite():
    codec = default_codec(store_br_expiration=False)
    br = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, 7.0)
    decoded, _ = codec.decode(codec.encode(Node(1, [(br, 3)]), 0.0))
    assert math.isinf(decoded.entries[0][0].t_exp)


def test_full_node_fills_exactly_one_page():
    layout = EntryLayout(page_size=4096)
    codec = NodeCodec(layout)
    entries = [
        (MovingPoint((float(i), 0.0), (0.0, 0.0), 0.0, 10.0), i)
        for i in range(layout.leaf_capacity)  # the paper's 170
    ]
    page = codec.encode(Node(0, entries), 0.0)
    assert len(page) == 4096
    decoded, _ = codec.decode(page)
    assert len(decoded) == 170


def test_overfull_node_rejected():
    layout = EntryLayout(page_size=512)
    codec = NodeCodec(layout)
    entries = [
        (MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, 1.0), i)
        for i in range(layout.leaf_capacity + 1)
    ]
    with pytest.raises(CodecError):
        codec.encode(Node(0, entries), 0.0)


def test_wrong_page_size_rejected():
    codec = default_codec()
    with pytest.raises(CodecError):
        codec.decode(b"\0" * 100)


def test_every_node_of_a_real_tree_fits_its_page():
    """Build a real R^exp-tree and serialize every page it allocated."""
    clock = SimulationClock()
    config = rexp_config(page_size=1024, buffer_pages=8, default_ui=10.0)
    tree = MovingObjectTree(config, clock)
    codec = NodeCodec(config.layout())
    rng = random.Random(0)
    t = 0.0
    for oid in range(500):
        t += 0.02
        clock.advance_to(t)
        tree.insert(oid, MovingPoint(
            (rng.uniform(0, 100), rng.uniform(0, 100)),
            (rng.uniform(-2, 2), rng.uniform(-2, 2)),
            t, t + rng.uniform(1, 50),
        ))
    for pid in tree.disk.page_ids():
        node = tree.disk.peek(pid)
        page = codec.encode(node, t_ref=clock.time)
        assert len(page) == 1024
        decoded, _ = codec.decode(page)
        assert len(decoded) == len(node)
        assert decoded.level == node.level


# -- edge cases: the durable page file depends on these round trips -----------


def test_nan_expiration_rejected_by_moving_point():
    # A NaN expiration would poison every comparison downstream; the
    # point type itself refuses it (NaN < t_ref is False, so the decode
    # clamp would silently "repair" it — better to never encode one).
    with pytest.raises(ValueError):
        MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, float("nan"))


def test_denormal_velocities_survive_round_trip():
    codec = default_codec()
    tiny = 1e-40  # denormal in binary32
    p = MovingPoint((1.0, 2.0), (tiny, -tiny), 0.0, 100.0)
    decoded, _ = codec.decode(codec.encode(Node(0, [(p, 1)]), 0.0))
    q = decoded.entries[0][0]
    # binary32 keeps denormals (possibly rounded), and must keep signs.
    assert q.vel[0] >= 0.0 and q.vel[1] <= 0.0
    assert abs(q.vel[0] - tiny) < 1e-44
    assert abs(q.vel[1] + tiny) < 1e-44


def test_zero_entry_leaf_and_internal_round_trip():
    codec = default_codec()
    for level in (0, 3):
        page = codec.encode(Node(level), t_ref=7.0)
        decoded, t_ref = codec.decode(page)
        assert len(decoded) == 0
        assert decoded.level == level
        assert decoded.is_leaf == (level == 0)
        assert t_ref == 7.0


@pytest.mark.parametrize("page_size", [512, 4096])
def test_max_capacity_nodes_round_trip(page_size):
    layout = EntryLayout(page_size=page_size, dims=2)
    codec = NodeCodec(layout)
    rng = random.Random(page_size)

    leaf_entries = [
        (
            MovingPoint(
                (rng.uniform(0, 100), rng.uniform(0, 100)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                5.0,
                5.0 + rng.uniform(0, 60),
            ),
            oid,
        )
        for oid in range(layout.leaf_capacity)
    ]
    page = codec.encode(Node(0, leaf_entries), t_ref=5.0)
    assert len(page) == page_size
    decoded, _ = codec.decode(page)
    assert len(decoded) == layout.leaf_capacity
    assert [oid for _, oid in decoded.entries] == list(
        range(layout.leaf_capacity)
    )

    internal_entries = [
        (
            TPBR(
                (float(i), 0.0), (float(i) + 1.0, 2.0),
                (-0.5, 0.0), (0.5, 1.0), 5.0, 5.0 + float(i),
            ),
            i + 100,
        )
        for i in range(layout.internal_capacity)
    ]
    page = codec.encode(Node(1, internal_entries), t_ref=5.0)
    decoded, _ = codec.decode(page)
    assert len(decoded) == layout.internal_capacity
    assert [child for _, child in decoded.entries] == [
        i + 100 for i in range(layout.internal_capacity)
    ]


@pytest.mark.parametrize("page_size", [512, 4096])
def test_over_capacity_node_rejected(page_size):
    layout = EntryLayout(page_size=page_size, dims=2)
    codec = NodeCodec(layout)
    point = MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, 10.0)
    entries = [(point, i) for i in range(layout.leaf_capacity + 1)]
    with pytest.raises(CodecError):
        codec.encode(Node(0, entries), t_ref=0.0)
