"""Tests for the simulated disk manager."""

import pytest

from repro.storage.disk import DiskManager, PageError


def test_allocate_returns_distinct_ids():
    disk = DiskManager(page_size=512)
    pids = {disk.allocate() for _ in range(10)}
    assert len(pids) == 10
    assert disk.allocated_pages == 10


def test_read_write_charge_io():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, "payload")
    assert disk.read(pid) == "payload"
    assert disk.stats.reads == 1
    assert disk.stats.writes == 1


def test_allocation_charges_no_io():
    disk = DiskManager()
    disk.allocate()
    assert disk.stats.reads == 0
    assert disk.stats.writes == 0
    assert disk.stats.allocations == 1


def test_free_recycles_page_ids():
    disk = DiskManager()
    pid = disk.allocate()
    disk.free(pid)
    assert disk.allocated_pages == 0
    assert disk.allocate() == pid


def test_free_unallocated_raises():
    disk = DiskManager()
    with pytest.raises(PageError):
        disk.free(42)


def test_read_unallocated_raises():
    disk = DiskManager()
    with pytest.raises(PageError):
        disk.read(7)


def test_write_after_free_raises():
    disk = DiskManager()
    pid = disk.allocate()
    disk.free(pid)
    with pytest.raises(PageError):
        disk.write(pid, "x")


def test_peek_charges_no_io():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, "data")
    before = disk.stats.reads
    assert disk.peek(pid) == "data"
    assert disk.stats.reads == before


def test_invalid_page_size_rejected():
    with pytest.raises(ValueError):
        DiskManager(page_size=0)


def test_page_ids_iterates_live_pages():
    disk = DiskManager()
    a = disk.allocate()
    b = disk.allocate()
    disk.free(a)
    assert set(disk.page_ids()) == {b}


def test_allocate_many_recycles_free_list_first():
    disk = DiskManager(page_size=64)
    pids = [disk.allocate() for _ in range(4)]
    disk.free(pids[1])
    disk.free(pids[2])
    bulk = disk.allocate_many(5)
    assert len(bulk) == len(set(bulk)) == 5
    assert {pids[1], pids[2]} <= set(bulk)  # recycled before extending
    assert disk.allocated_pages == 7
    assert disk.stats.allocations == 9


def test_allocate_many_zero_count():
    disk = DiskManager(page_size=64)
    assert disk.allocate_many(0) == []
    assert disk.allocated_pages == 0
