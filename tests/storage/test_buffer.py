"""Tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager, PageError


def make(capacity=3):
    disk = DiskManager(page_size=256)
    return disk, BufferPool(disk, capacity=capacity)


def _page(disk, value):
    pid = disk.allocate()
    disk.write(pid, value)
    return pid


def test_hit_charges_no_io():
    disk, pool = make()
    pid = _page(disk, "a")
    pool.get(pid)
    reads = disk.stats.reads
    pool.get(pid)
    assert disk.stats.reads == reads  # second access is a buffer hit


def test_miss_reads_from_disk():
    disk, pool = make()
    pid = _page(disk, "a")
    assert pool.get(pid) == "a"
    assert disk.stats.reads == 1


def test_lru_eviction_order():
    disk, pool = make(capacity=2)
    a, b, c = (_page(disk, v) for v in "abc")
    pool.get(a)
    pool.get(b)
    pool.get(a)      # a becomes most-recently-used
    pool.get(c)      # evicts b
    assert pool.is_resident(a)
    assert not pool.is_resident(b)
    assert pool.is_resident(c)


def test_dirty_page_flushed_on_eviction():
    disk, pool = make(capacity=1)
    a = _page(disk, "a")
    b = _page(disk, "b")
    pool.get(a)
    pool.mark_dirty(a, "a2")
    pool.get(b)  # evicts a, must write it back
    assert disk.peek(a) == "a2"
    assert disk.stats.writes >= 2  # initial setup writes + eviction


def test_pinned_page_never_evicted():
    disk, pool = make(capacity=2)
    a, b, c = (_page(disk, v) for v in "abc")
    pool.get(a)
    pool.pin(a)
    pool.get(b)
    pool.get(c)
    assert pool.is_resident(a)


def test_flush_all_writes_only_dirty_pages():
    disk, pool = make()
    a = _page(disk, "a")
    b = _page(disk, "b")
    pool.get(a)
    pool.get(b)
    pool.mark_dirty(a, "a2")
    writes = disk.stats.writes
    pool.flush_all()
    assert disk.stats.writes == writes + 1
    assert pool.dirty_pages == 0
    pool.flush_all()  # nothing dirty, no writes
    assert disk.stats.writes == writes + 1


def test_put_new_costs_no_read():
    disk, pool = make()
    pid = disk.allocate()
    pool.put_new(pid, "fresh")
    assert disk.stats.reads == 0
    assert pool.get(pid) == "fresh"
    assert disk.stats.reads == 0


def test_discard_drops_without_flush():
    disk, pool = make()
    pid = disk.allocate()
    pool.put_new(pid, "junk")
    writes = disk.stats.writes
    pool.discard(pid)
    assert disk.stats.writes == writes
    assert not pool.is_resident(pid)


def test_mark_dirty_unbuffered_without_payload_raises():
    disk, pool = make()
    pid = disk.allocate()
    with pytest.raises(PageError):
        pool.mark_dirty(pid)


def test_mark_dirty_readmits_evicted_page():
    """A write brings an evicted page back into the pool."""
    disk, pool = make(capacity=1)
    a = _page(disk, "a")
    b = _page(disk, "b")
    pool.get(a)
    pool.get(b)  # evicts a
    pool.mark_dirty(a, "a2")
    assert pool.is_resident(a)
    pool.flush_all()
    assert disk.peek(a) == "a2"


def test_over_admission_when_all_pinned():
    disk, pool = make(capacity=1)
    a = _page(disk, "a")
    b = _page(disk, "b")
    pool.get(a)
    pool.pin(a)
    pool.get(b)  # cannot evict a; pool over-admits rather than failing
    assert pool.is_resident(a)
    assert pool.is_resident(b)


def test_invalid_capacity_rejected():
    disk = DiskManager()
    with pytest.raises(ValueError):
        BufferPool(disk, capacity=0)


def test_clear_flushes_and_empties():
    disk, pool = make()
    a = _page(disk, "a")
    pool.get(a)
    pool.mark_dirty(a, "a2")
    pool.clear()
    assert pool.resident_pages == 0
    assert disk.peek(a) == "a2"


def test_clear_preserves_pins():
    """Regression: clear() used to wipe the pin set, so after a
    between-experiments clear the tree root became evictable and no
    caller ever re-pinned it."""
    disk, pool = make(capacity=2)
    root = _page(disk, "root")
    pool.get(root)
    pool.pin(root)
    pool.clear()
    assert pool.is_pinned(root)
    # The re-admitted root must survive LRU pressure, as before clear().
    pool.get(root)
    b, c = _page(disk, "b"), _page(disk, "c")
    pool.get(b)
    pool.get(c)
    assert pool.is_resident(root)


def test_tree_root_stays_pinned_across_buffer_clear():
    """The three tree owners pin their root once, at construction; a
    buffer clear between experiments must not orphan that pin."""
    from repro.core.presets import rexp_config
    from repro.core.tree import MovingObjectTree

    tree = MovingObjectTree(rexp_config(page_size=512, buffer_pages=4))
    tree.buffer.clear()
    assert tree.buffer.is_pinned(tree.root_pid)
