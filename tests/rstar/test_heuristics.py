"""Tests for the generic R* heuristics over plain rectangles."""

import pytest

from repro.geometry.rect import Rect
from repro.rstar.heuristics import (
    choose_child,
    choose_split,
    reinsert_candidates,
)
from repro.rstar.metrics import RectMetrics

METRICS = RectMetrics()


def square(x, y, side=1.0):
    return Rect((x, y), (x + side, y + side))


def test_choose_child_prefers_containing_region():
    children = [square(0, 0, 4), square(10, 10, 4)]
    new = square(1, 1)
    assert choose_child(METRICS, children, new, use_overlap=False) == 0


def test_choose_child_minimizes_enlargement():
    children = [square(0, 0, 2), square(5, 0, 2)]
    new = square(4.5, 0.5, 0.2)  # barely outside the second square
    assert choose_child(METRICS, children, new, use_overlap=False) == 1


def test_choose_child_overlap_heuristic_breaks_area_ties():
    # Two children need equal enlargement, but extending the first would
    # overlap its sibling.
    a = Rect((0.0, 0.0), (4.0, 2.0))
    b = Rect((5.0, 0.0), (9.0, 2.0))
    new = square(4.4, 0.9, 0.2)
    pick_plain = choose_child(METRICS, [a, b], new, use_overlap=False)
    pick_overlap = choose_child(METRICS, [a, b], new, use_overlap=True)
    assert pick_overlap == 1
    assert pick_plain in (0, 1)


def test_choose_child_empty_raises():
    with pytest.raises(ValueError):
        choose_child(METRICS, [], square(0, 0), use_overlap=False)


def test_split_separates_clusters():
    cluster_a = [square(0, 0), square(0.5, 0.5), square(1, 0)]
    cluster_b = [square(50, 50), square(51, 50), square(50, 51)]
    regions = cluster_a + cluster_b
    result = choose_split(METRICS, regions, min_entries=2)
    groups = {tuple(sorted(result.group_a)), tuple(sorted(result.group_b))}
    assert groups == {(0, 1, 2), (3, 4, 5)}


def test_split_respects_min_entries():
    regions = [square(float(i), 0.0) for i in range(10)]
    result = choose_split(METRICS, regions, min_entries=4)
    assert len(result.group_a) >= 4
    assert len(result.group_b) >= 4
    assert sorted(result.group_a + result.group_b) == list(range(10))


def test_split_too_few_entries_raises():
    with pytest.raises(ValueError):
        choose_split(METRICS, [square(0, 0), square(1, 1)], min_entries=2)


def test_reinsert_candidates_picks_farthest():
    regions = [square(0, 0), square(0.2, 0.2), square(0.4, 0.0), square(30, 30)]
    evicted = reinsert_candidates(METRICS, regions, count=1)
    bound = METRICS.bound(regions)
    distances = [METRICS.center_distance(r, bound) for r in regions]
    assert len(evicted) == 1
    assert distances[evicted[0]] == pytest.approx(max(distances))


def test_reinsert_candidates_close_reinsert_order():
    """Evicted entries come farthest-last (R* 'close reinsert')."""
    regions = [square(0, 0), square(10, 10), square(20, 20), square(-1, -1)]
    evicted = reinsert_candidates(METRICS, regions, count=2)
    bound = METRICS.bound(regions)
    distances = [METRICS.center_distance(regions[i], bound) for i in evicted]
    assert distances == sorted(distances)


def test_reinsert_zero_count():
    assert reinsert_candidates(METRICS, [square(0, 0)], count=0) == []
