"""Tests for the kinetic metric provider (Equation 1 objectives)."""

import math
import random

import pytest

from repro.geometry.bounding import BoundingKind
from repro.geometry.kinematics import MovingPoint
from repro.geometry.tpbr import TPBR
from repro.rstar.metrics import KineticMetrics, as_tpbr, strip_expiration


def make_metrics(kind=BoundingKind.CONSERVATIVE, now=0.0, horizon=10.0,
                 ignore=False):
    return KineticMetrics(
        kind,
        now=lambda: now,
        horizon=lambda: horizon,
        rng=random.Random(0),
        ignore_expiration=ignore,
    )


def test_as_tpbr_wraps_moving_point():
    p = MovingPoint((1.0, 2.0), (0.5, 0.0), 0.0, 5.0)
    br = as_tpbr(p)
    assert isinstance(br, TPBR)
    assert br.lo == br.hi == (1.0, 2.0)
    assert br.t_exp == 5.0
    # TPBRs pass through untouched.
    assert as_tpbr(br) is br


def test_strip_expiration():
    p = MovingPoint((1.0,), (0.0,), 0.0, 5.0)
    assert math.isinf(strip_expiration(p).t_exp)
    br = TPBR((0.0,), (1.0,), (0.0,), (0.0,), 0.0, 5.0)
    assert math.isinf(strip_expiration(br).t_exp)
    eternal = MovingPoint((1.0,), (0.0,))
    assert strip_expiration(eternal) is eternal


def test_area_of_point_region_is_zero():
    metrics = make_metrics()
    p = MovingPoint((1.0, 1.0), (0.0, 0.0), 0.0, 5.0)
    assert metrics.area(p) == 0.0


def test_growing_region_has_larger_area_integral():
    metrics = make_metrics()
    still = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, 20.0)
    growing = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (1.0, 1.0), 0.0, 20.0)
    assert metrics.area(growing) > metrics.area(still)


def test_expiration_shortens_integration_window():
    metrics = make_metrics()
    long_lived = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, 20.0)
    short_lived = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, 2.0)
    assert metrics.area(short_lived) < metrics.area(long_lived)


def test_ignore_expiration_equalizes_windows():
    metrics = make_metrics(ignore=True)
    long_lived = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, 20.0)
    short_lived = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, 2.0)
    assert metrics.area(short_lived) == pytest.approx(metrics.area(long_lived))


def test_bound_covers_members():
    metrics = make_metrics(kind=BoundingKind.NEAR_OPTIMAL)
    pts = [
        MovingPoint((0.0, 0.0), (1.0, 0.0), 0.0, 5.0),
        MovingPoint((3.0, 3.0), (-1.0, 0.5), 0.0, 8.0),
    ]
    bound = metrics.bound(pts)
    for p in pts:
        assert bound.contains_point(p, 0.0, tol=1e-6)


def test_bound_with_ignore_expiration_degenerates_static_to_conservative():
    """Static/update-minimum bounds require expiration times; when the
    decision metrics pretend nothing expires they must fall back."""
    metrics = make_metrics(kind=BoundingKind.STATIC, ignore=True)
    pts = [
        MovingPoint((0.0, 0.0), (1.0, 0.0), 0.0, 5.0),
        MovingPoint((3.0, 3.0), (-1.0, 0.5), 0.0, 8.0),
    ]
    bound = metrics.bound(pts)  # must not raise
    assert bound.vhi[0] == pytest.approx(1.0)


def test_enlargement_nonnegative_for_outside_point():
    metrics = make_metrics(kind=BoundingKind.CONSERVATIVE)
    region = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, 10.0)
    outside = MovingPoint((5.0, 5.0), (0.0, 0.0), 0.0, 10.0)
    assert metrics.enlargement(region, outside) > 0.0


def test_split_sort_keys_cover_positions_and_velocities():
    metrics = make_metrics(now=2.0)
    br = TPBR((0.0, 0.0), (1.0, 2.0), (-1.0, 0.0), (1.0, 0.5), 0.0, 10.0)
    keys = metrics.split_sort_keys(br)
    # 2 dims x (lower, upper) positions + 2 dims x (vlo, vhi).
    assert len(keys) == 8
    assert keys[0] == pytest.approx(br.lower_at(0, 2.0))
    assert keys[4:] == [-1.0, 1.0, 0.0, 0.5]


def test_overlap_integral_symmetry():
    metrics = make_metrics()
    x = TPBR((0.0, 0.0), (2.0, 2.0), (0.0, 0.0), (0.5, 0.5), 0.0, 10.0)
    y = TPBR((1.0, 1.0), (3.0, 3.0), (-0.5, 0.0), (0.0, 0.0), 0.0, 10.0)
    assert metrics.overlap(x, y) == pytest.approx(metrics.overlap(y, x))
