"""Tests for the shared node representation."""

import pytest

from repro.geometry.rect import Rect
from repro.rstar.node import Node


def test_leaf_properties():
    node = Node(0, [(Rect((0.0,), (1.0,)), "a")])
    assert node.is_leaf
    assert len(node) == 1
    assert node.regions() == [Rect((0.0,), (1.0,))]
    with pytest.raises(ValueError):
        node.child_ids()


def test_internal_children():
    node = Node(1, [(Rect((0.0,), (1.0,)), 7), (Rect((2.0,), (3.0,)), 9)])
    assert not node.is_leaf
    assert node.child_ids() == [7, 9]


def test_default_entries_are_independent():
    a = Node(0)
    b = Node(0)
    a.entries.append((Rect((0.0,), (1.0,)), "x"))
    assert len(b) == 0
