"""Tests for the classic R*-tree substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.rstar.tree import RStarTree


def small_tree(**kwargs):
    defaults = dict(page_size=256, buffer_pages=16)
    defaults.update(kwargs)
    return RStarTree(**defaults)


def random_rect(rng, space=100.0, max_side=2.0):
    x, y = rng.uniform(0, space), rng.uniform(0, space)
    return Rect((x, y), (x + rng.uniform(0, max_side), y + rng.uniform(0, max_side)))


def test_insert_and_point_search():
    tree = small_tree()
    tree.insert(Rect((1.0, 1.0), (2.0, 2.0)), "a")
    assert tree.search(Rect((0.0, 0.0), (3.0, 3.0))) == ["a"]
    assert tree.search(Rect((5.0, 5.0), (6.0, 6.0))) == []


def test_search_matches_brute_force():
    rng = random.Random(1)
    tree = small_tree()
    items = []
    for i in range(500):
        r = random_rect(rng)
        items.append((r, i))
        tree.insert(r, i)
    for _ in range(40):
        q = random_rect(rng, space=90.0, max_side=12.0)
        got = sorted(tree.search(q))
        want = sorted(i for r, i in items if r.intersects(q))
        assert got == want


def test_tree_grows_in_height():
    rng = random.Random(2)
    tree = small_tree()
    assert tree.height == 1
    for i in range(300):
        tree.insert(random_rect(rng), i)
    assert tree.height >= 3
    assert len(tree) == 300


def test_delete_removes_exact_entry():
    tree = small_tree()
    r = Rect((1.0, 1.0), (2.0, 2.0))
    tree.insert(r, "a")
    tree.insert(r, "b")
    assert tree.delete(r, "a")
    assert tree.search(Rect((0.0, 0.0), (3.0, 3.0))) == ["b"]
    assert not tree.delete(r, "a")  # already gone


def test_delete_missing_returns_false():
    tree = small_tree()
    assert not tree.delete(Rect((0.0, 0.0), (1.0, 1.0)), "ghost")


def test_mass_delete_shrinks_tree():
    rng = random.Random(3)
    tree = small_tree()
    items = [(random_rect(rng), i) for i in range(400)]
    for r, i in items:
        tree.insert(r, i)
    peak_pages = tree.page_count
    for r, i in items[:360]:
        assert tree.delete(r, i)
    assert len(tree) == 40
    assert tree.page_count < peak_pages
    remaining = sorted(i for _, i in items[360:])
    assert sorted(tree.search(Rect((0.0, 0.0), (110.0, 110.0)))) == remaining


def test_delete_then_search_consistency():
    rng = random.Random(4)
    tree = small_tree()
    alive = {}
    for i in range(600):
        if alive and rng.random() < 0.4:
            key = rng.choice(list(alive))
            r = alive.pop(key)
            assert tree.delete(r, key)
        else:
            r = random_rect(rng)
            alive[i] = r
            tree.insert(r, i)
    q = Rect((0.0, 0.0), (110.0, 110.0))
    assert sorted(tree.search(q)) == sorted(alive)


def test_io_is_charged_for_operations():
    rng = random.Random(5)
    tree = small_tree(buffer_pages=2)
    for i in range(200):
        tree.insert(random_rect(rng), i)
    assert tree.stats.reads > 0
    assert tree.stats.writes > 0


def test_dimension_mismatch_rejected():
    tree = small_tree()
    with pytest.raises(ValueError):
        tree.insert(Rect((0.0,), (1.0,)), "x")


def test_paper_page_size_fanout():
    tree = RStarTree(page_size=4096)
    # Static rectangles: 2d coords * 4 bytes + 4-byte pointer = 20 bytes.
    assert tree.leaf_capacity == tree.internal_capacity == 204


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=50, allow_nan=False, allow_subnormal=False),
    st.floats(min_value=0, max_value=50, allow_nan=False, allow_subnormal=False),
    st.floats(min_value=0, max_value=3, allow_nan=False, allow_subnormal=False),
    st.floats(min_value=0, max_value=3, allow_nan=False, allow_subnormal=False),
), min_size=1, max_size=120))
@settings(max_examples=25, deadline=None)
def test_property_search_equals_brute_force(raw):
    tree = small_tree()
    items = []
    for i, (x, y, w, h) in enumerate(raw):
        r = Rect((x, y), (x + w, y + h))
        items.append((r, i))
        tree.insert(r, i)
    for q in (
        Rect((0.0, 0.0), (60.0, 60.0)),
        Rect((10.0, 10.0), (20.0, 20.0)),
        Rect((49.0, 49.0), (50.0, 50.0)),
    ):
        got = sorted(tree.search(q))
        want = sorted(i for r, i in items if r.intersects(q))
        assert got == want
