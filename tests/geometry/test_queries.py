"""Tests for the three query types of Section 2.1."""

import pytest

from repro.geometry.queries import (
    MovingQuery,
    TimesliceQuery,
    WindowQuery,
)
from repro.geometry.rect import Rect


def test_timeslice_region_is_degenerate_window():
    q = TimesliceQuery(Rect((0.0, 0.0), (2.0, 2.0)), 5.0)
    region = q.region()
    assert region.t1 == region.t2 == 5.0
    assert region.rect_at(5.0) == q.rect
    assert q.t1 == q.t2 == 5.0


def test_window_region_is_constant_over_time():
    q = WindowQuery(Rect((0.0, 0.0), (2.0, 2.0)), 1.0, 4.0)
    region = q.region()
    assert region.rect_at(1.0) == region.rect_at(4.0) == q.rect


def test_moving_region_interpolates_linearly():
    r1 = Rect((0.0, 0.0), (2.0, 2.0))
    r2 = Rect((10.0, 0.0), (12.0, 4.0))
    q = MovingQuery(r1, r2, 0.0, 10.0)
    region = q.region()
    assert region.rect_at(0.0) == r1
    assert region.rect_at(10.0) == r2
    mid = region.rect_at(5.0)
    assert mid.lo == pytest.approx((5.0, 0.0))
    assert mid.hi == pytest.approx((7.0, 3.0))


def test_moving_query_with_zero_span_unions_rectangles():
    r1 = Rect((0.0, 0.0), (1.0, 1.0))
    r2 = Rect((2.0, 2.0), (3.0, 3.0))
    q = MovingQuery(r1, r2, 5.0, 5.0)
    region = q.region()
    assert region.rect_at(5.0) == r1.union(r2)


def test_query_region_bounds_evaluation():
    r1 = Rect((0.0,), (2.0,))
    r2 = Rect((4.0,), (6.0,))
    region = MovingQuery(r1, r2, 0.0, 4.0).region()
    assert region.lower_at(0, 2.0) == pytest.approx(2.0)
    assert region.upper_at(0, 2.0) == pytest.approx(4.0)


def test_reversed_interval_rejected():
    r = Rect((0.0,), (1.0,))
    with pytest.raises(ValueError):
        WindowQuery(r, 5.0, 4.0)
    with pytest.raises(ValueError):
        MovingQuery(r, r, 5.0, 4.0)


def test_moving_query_dimension_mismatch_rejected():
    with pytest.raises(ValueError):
        MovingQuery(Rect((0.0,), (1.0,)), Rect((0.0, 0.0), (1.0, 1.0)), 0.0, 1.0)
