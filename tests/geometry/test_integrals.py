"""Tests for the time-integral objectives (Equation 1).

Every analytic integral is validated against numerical quadrature of the
corresponding pointwise quantity.
"""

import math
import random

import pytest

from repro.geometry.integrals import (
    area_integral,
    center_distance_sq_integral,
    integration_end,
    margin_integral,
    overlap_integral,
)
from repro.geometry.tpbr import TPBR


def numeric(f, a, b, steps=4000):
    """Simple composite midpoint quadrature."""
    if b <= a:
        return 0.0
    h = (b - a) / steps
    return sum(f(a + (i + 0.5) * h) for i in range(steps)) * h


def random_tpbr(rng, dims=2, shrink=False):
    lo = tuple(rng.uniform(-10, 0) for _ in range(dims))
    hi = tuple(rng.uniform(0.5, 10) for _ in range(dims))
    if shrink:
        vlo = tuple(rng.uniform(0.0, 2.0) for _ in range(dims))
        vhi = tuple(rng.uniform(-2.0, 0.0) for _ in range(dims))
    else:
        vlo = tuple(rng.uniform(-2, 2) for _ in range(dims))
        vhi = tuple(rng.uniform(-2, 2) for _ in range(dims))
    return TPBR(lo, hi, vlo, vhi, t_ref=rng.uniform(-1, 1), t_exp=20.0)


@pytest.mark.parametrize("seed", range(8))
def test_area_integral_matches_quadrature(seed):
    rng = random.Random(seed)
    br = random_tpbr(rng, shrink=seed % 2 == 0)
    a, b = 0.0, 8.0
    expected = numeric(lambda t: br.area_at(t), a, b)
    assert area_integral(br, a, b) == pytest.approx(expected, rel=2e-3, abs=1e-3)


@pytest.mark.parametrize("seed", range(8))
def test_margin_integral_matches_quadrature(seed):
    rng = random.Random(seed + 100)
    br = random_tpbr(rng, shrink=seed % 2 == 0)
    a, b = 0.0, 8.0
    expected = numeric(lambda t: br.margin_at(t), a, b)
    assert margin_integral(br, a, b) == pytest.approx(expected, rel=2e-3, abs=1e-3)


@pytest.mark.parametrize("seed", range(10))
def test_overlap_integral_matches_quadrature(seed):
    rng = random.Random(seed + 200)
    x = random_tpbr(rng)
    y = random_tpbr(rng)
    a, b = 0.0, 6.0

    def pointwise(t):
        area = 1.0
        for d in range(x.dims):
            lo = max(x.lower_at(d, t), y.lower_at(d, t))
            hi = min(x.upper_at(d, t), y.upper_at(d, t))
            if hi <= lo:
                return 0.0
            area *= hi - lo
        return area

    expected = numeric(pointwise, a, b)
    assert overlap_integral(x, y, a, b) == pytest.approx(
        expected, rel=2e-3, abs=1e-3
    )


@pytest.mark.parametrize("seed", range(6))
def test_center_distance_sq_matches_quadrature(seed):
    rng = random.Random(seed + 300)
    x = random_tpbr(rng)
    y = random_tpbr(rng)
    a, b = 0.0, 5.0

    def pointwise(t):
        cx = x.center_at(t)
        cy = y.center_at(t)
        return sum((p - q) ** 2 for p, q in zip(cx, cy))

    expected = numeric(pointwise, a, b)
    assert center_distance_sq_integral(x, y, a, b) == pytest.approx(
        expected, rel=2e-3, abs=1e-3
    )


def test_empty_interval_is_zero():
    br = TPBR((0.0,), (1.0,), (0.0,), (0.0,), 0.0, 5.0)
    assert area_integral(br, 3.0, 3.0) == 0.0
    assert margin_integral(br, 4.0, 3.0) == 0.0
    assert overlap_integral(br, br, 4.0, 3.0) == 0.0


def test_shrinking_area_stops_contributing_after_collapse():
    br = TPBR((0.0,), (2.0,), (1.0,), (-1.0,), 0.0, 10.0)  # collapses at t=1
    full = area_integral(br, 0.0, 10.0)
    early = area_integral(br, 0.0, 1.0)
    assert full == pytest.approx(early)


def test_disjoint_rectangles_have_zero_overlap():
    x = TPBR((0.0,), (1.0,), (0.0,), (0.0,), 0.0, 10.0)
    y = TPBR((5.0,), (6.0,), (0.0,), (0.0,), 0.0, 10.0)
    assert overlap_integral(x, y, 0.0, 5.0) == 0.0


def test_approaching_rectangles_gain_overlap():
    x = TPBR((0.0,), (1.0,), (0.0,), (0.0,), 0.0, 10.0)
    y = TPBR((2.0,), (3.0,), (-1.0,), (-1.0,), 0.0, 10.0)  # moving left
    assert overlap_integral(x, y, 0.0, 1.0) == 0.0
    assert overlap_integral(x, y, 0.0, 4.0) > 0.0


def test_integration_end_clips_at_horizon_and_expiry():
    assert integration_end(10.0, 5.0, [100.0]) == 15.0
    assert integration_end(10.0, 50.0, [20.0]) == 20.0
    assert integration_end(10.0, 5.0, [8.0]) == 10.0  # already expired


def test_integration_end_unbounded_raises():
    with pytest.raises(ValueError):
        integration_end(0.0, None, [math.inf])
