"""Tests for moving points."""

import math

import pytest

from repro.geometry.kinematics import NEVER, MovingPoint


def test_position_extrapolation():
    p = MovingPoint((1.0, 2.0), (0.5, -1.0), t_ref=10.0, t_exp=20.0)
    assert p.position_at(10.0) == (1.0, 2.0)
    assert p.position_at(12.0) == (2.0, 0.0)
    assert p.coordinate_at(1, 12.0) == 0.0


def test_expiry_boundary_is_inclusive():
    """An entry is still live at its exact expiration instant, so a
    deletion scheduled for t_exp always finds it."""
    p = MovingPoint((0.0,), (1.0,), 0.0, 5.0)
    assert not p.is_expired(5.0)
    assert p.is_expired(5.0 + 1e-9)


def test_never_expires():
    p = MovingPoint((0.0,), (1.0,))
    assert p.t_exp == NEVER
    assert not p.is_expired(1e12)


def test_reference_time_change_preserves_trajectory():
    p = MovingPoint((1.0, 1.0), (2.0, -1.0), 0.0, 9.0)
    q = p.with_reference_time(4.0)
    assert q.t_ref == 4.0
    assert q.t_exp == 9.0
    for t in (4.0, 6.5, 9.0):
        assert q.position_at(t) == pytest.approx(p.position_at(t))


def test_speed():
    p = MovingPoint((0.0, 0.0), (3.0, 4.0))
    assert p.speed() == pytest.approx(5.0)


def test_dimension_mismatch_rejected():
    with pytest.raises(ValueError):
        MovingPoint((0.0, 0.0), (1.0,))


def test_zero_dimensional_rejected():
    with pytest.raises(ValueError):
        MovingPoint((), ())


def test_expiry_before_reference_rejected():
    with pytest.raises(ValueError):
        MovingPoint((0.0,), (0.0,), t_ref=5.0, t_exp=4.0)


def test_points_are_hashable_and_frozen():
    p = MovingPoint((0.0,), (1.0,), 0.0, 1.0)
    q = MovingPoint((0.0,), (1.0,), 0.0, 1.0)
    assert p == q
    assert hash(p) == hash(q)
    with pytest.raises(AttributeError):
        p.t_ref = 3.0
