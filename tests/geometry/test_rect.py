"""Tests for static rectangles."""

import pytest

from repro.geometry.rect import Rect


def test_area_and_margin():
    r = Rect((0.0, 0.0), (2.0, 5.0))
    assert r.area == 10.0
    assert r.margin == 7.0


def test_union():
    a = Rect((0.0, 0.0), (1.0, 1.0))
    b = Rect((2.0, -1.0), (3.0, 0.5))
    u = a.union(b)
    assert u == Rect((0.0, -1.0), (3.0, 1.0))


def test_union_of_many():
    rects = [Rect((i, i), (i + 1.0, i + 1.0)) for i in range(3)]
    u = Rect.union_of(rects)
    assert u == Rect((0.0, 0.0), (3.0, 3.0))


def test_union_of_empty_raises():
    with pytest.raises(ValueError):
        Rect.union_of([])


def test_intersects_and_overlap():
    a = Rect((0.0, 0.0), (2.0, 2.0))
    b = Rect((1.0, 1.0), (3.0, 3.0))
    c = Rect((5.0, 5.0), (6.0, 6.0))
    assert a.intersects(b)
    assert a.overlap_area(b) == 1.0
    assert not a.intersects(c)
    assert a.overlap_area(c) == 0.0


def test_touching_rectangles_intersect_with_zero_overlap():
    a = Rect((0.0, 0.0), (1.0, 1.0))
    b = Rect((1.0, 0.0), (2.0, 1.0))
    assert a.intersects(b)
    assert a.overlap_area(b) == 0.0


def test_contains():
    outer = Rect((0.0, 0.0), (10.0, 10.0))
    inner = Rect((1.0, 1.0), (2.0, 2.0))
    assert outer.contains_rect(inner)
    assert not inner.contains_rect(outer)
    assert outer.contains_point((5.0, 5.0))
    assert not outer.contains_point((11.0, 5.0))


def test_enlargement():
    a = Rect((0.0, 0.0), (1.0, 1.0))
    b = Rect((2.0, 0.0), (3.0, 1.0))
    assert a.enlargement(b) == pytest.approx(3.0 - 1.0)
    assert a.enlargement(a) == 0.0


def test_center_and_distance():
    a = Rect((0.0, 0.0), (2.0, 2.0))
    b = Rect((4.0, 0.0), (6.0, 2.0))
    assert a.center == (1.0, 1.0)
    assert a.center_distance(b) == pytest.approx(4.0)


def test_point_rect():
    p = Rect.from_point((3.0, 4.0))
    assert p.area == 0.0
    assert p.contains_point((3.0, 4.0))


def test_degenerate_rejected():
    with pytest.raises(ValueError):
        Rect((1.0,), (0.0,))
    with pytest.raises(ValueError):
        Rect((), ())
    with pytest.raises(ValueError):
        Rect((0.0,), (1.0, 2.0))
