"""Bit-for-bit equivalence of the batched kernels with the scalar code.

Every property here asserts *exact* equality (``==``, not approx):
the numpy paths in :mod:`repro.geometry.kernels` promise the same
IEEE-754 results as the scalar routines they batch, with and without
numpy installed.  The no-numpy fallback is exercised by nulling the
module's ``np`` binding.
"""

import contextlib
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import kernels
from repro.geometry.bounding import BoundingKind, compute_tpbr
from repro.geometry.integrals import (
    area_integral,
    center_distance_sq_integral,
    margin_integral,
    overlap_integral,
)
from repro.geometry.intersection import (
    region_intersects_tpbr,
    region_matches_point,
)
from repro.geometry.kernels import (
    batch_area_integral,
    batch_center_distance_sq_integral,
    batch_compute_tpbr,
    batch_margin_integral,
    batch_overlap_integral,
    batch_region_intersects,
    batch_region_matches,
    numpy_enabled,
)
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.geometry.tpbr import TPBR


@contextlib.contextmanager
def no_numpy():
    """Run the block on the pure-Python fallback path."""
    saved = kernels.np
    kernels.np = None
    try:
        yield
    finally:
        kernels.np = saved


def both_paths(fn):
    """Evaluate a batch call with and without numpy; assert equality."""
    with_np = fn()
    with no_numpy():
        without_np = fn()
    assert with_np == without_np
    return with_np


coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_subnormal=False
)
speed = st.floats(
    min_value=-5.0, max_value=5.0, allow_nan=False, allow_subnormal=False
)
life = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_subnormal=False
)


@st.composite
def moving_points(draw, dims=2, allow_infinite=True):
    pos = tuple(draw(coord) for _ in range(dims))
    vel = tuple(draw(speed) for _ in range(dims))
    if allow_infinite and draw(st.booleans()) and draw(st.booleans()):
        t_exp = math.inf
    else:
        t_exp = draw(life)
    return MovingPoint(pos, vel, 0.0, t_exp)


@st.composite
def tpbrs(draw, dims=2):
    """A valid TPBR: the conservative bound of a few random points."""
    members = draw(st.lists(moving_points(dims=dims), min_size=1, max_size=4))
    return compute_tpbr(members, 0.0, BoundingKind.CONSERVATIVE)


@st.composite
def queries(draw):
    lo = tuple(draw(coord) for _ in range(2))
    hi = tuple(c + draw(st.floats(min_value=0.0, max_value=50.0)) for c in lo)
    rect = Rect(lo, hi)
    t1 = draw(life)
    t2 = t1 + draw(st.floats(min_value=0.0, max_value=30.0))
    which = draw(st.integers(min_value=0, max_value=2))
    if which == 0:
        return TimesliceQuery(rect, t1)
    if which == 1:
        return WindowQuery(rect, t1, t2)
    shift = tuple(draw(speed) for _ in range(2))
    rect2 = Rect(
        tuple(c + s for c, s in zip(rect.lo, shift)),
        tuple(c + s for c, s in zip(rect.hi, shift)),
    )
    return MovingQuery(rect, rect2, t1, t2 + 0.5)


point_lists = st.lists(moving_points(), min_size=0, max_size=12)
tpbr_lists = st.lists(tpbrs(), min_size=0, max_size=12)
windows = st.tuples(
    life, st.floats(min_value=-5.0, max_value=60.0, allow_nan=False)
).map(lambda w: (w[0], w[0] + w[1]))


# -- intersection kernels ----------------------------------------------------


@given(query=queries(), points=point_lists)
@settings(deadline=None)
def test_batch_region_matches_equals_scalar(query, points):
    region = query.region()
    expected = [region_matches_point(region, p) for p in points]
    assert both_paths(lambda: batch_region_matches(region, points)) == expected


@given(query=queries(), brs=tpbr_lists)
@settings(deadline=None)
def test_batch_region_intersects_equals_scalar(query, brs):
    region = query.region()
    expected = [region_intersects_tpbr(region, br) for br in brs]
    assert both_paths(lambda: batch_region_intersects(region, brs)) == expected


# -- bounding kernel ---------------------------------------------------------


group_lists = st.lists(
    st.lists(moving_points(), min_size=1, max_size=6), min_size=1, max_size=5
)


@pytest.mark.parametrize("kind", list(BoundingKind))
@given(groups=group_lists)
@settings(deadline=None)
def test_batch_compute_tpbr_equals_scalar(kind, groups):
    if kind is BoundingKind.STATIC and any(
        math.isinf(p.t_exp) for g in groups for p in g
    ):
        return  # static bounds require finite expirations
    def run():
        # Fresh rng per path: scalar and batched must consume the
        # stream in the same order to produce the same rectangles.
        rng = random.Random(42)
        return batch_compute_tpbr(
            groups, 1.0, kind, horizon=20.0, rng=rng
        )
    result = both_paths(run)
    rng = random.Random(42)
    expected = [
        compute_tpbr(list(g), 1.0, kind, horizon=20.0, rng=rng)
        for g in groups
    ]
    assert result == expected


@given(groups=group_lists)
@settings(deadline=None)
def test_batch_compute_tpbr_conservative_on_child_tpbrs(groups):
    child_groups = [
        [TPBR.from_moving_point(p, 0.0) for p in g] for g in groups
    ]
    result = both_paths(
        lambda: batch_compute_tpbr(child_groups, 1.0, BoundingKind.CONSERVATIVE)
    )
    expected = [
        compute_tpbr(g, 1.0, BoundingKind.CONSERVATIVE) for g in child_groups
    ]
    assert result == expected


def test_batch_compute_tpbr_dimension_mismatch():
    groups = [[
        MovingPoint((0.0,), (0.0,), 0.0, 1.0),
        MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, 1.0),
    ]] * 3
    with pytest.raises(ValueError):
        batch_compute_tpbr(groups, 0.0, BoundingKind.CONSERVATIVE)


def test_batch_compute_tpbr_empty_group_raises():
    with pytest.raises(ValueError):
        batch_compute_tpbr([[]], 0.0, BoundingKind.CONSERVATIVE)


# -- integral kernels --------------------------------------------------------


@given(
    brs=tpbr_lists,
    window_list=st.lists(windows, min_size=12, max_size=12),
)
@settings(deadline=None)
def test_batch_area_integral_equals_scalar(brs, window_list):
    window_list = window_list[: len(brs)]
    expected = [
        area_integral(br, a, b) for br, (a, b) in zip(brs, window_list)
    ]
    assert both_paths(
        lambda: batch_area_integral(brs, window_list)
    ) == expected


@given(
    brs=tpbr_lists,
    window_list=st.lists(windows, min_size=12, max_size=12),
)
@settings(deadline=None)
def test_batch_margin_integral_equals_scalar(brs, window_list):
    window_list = window_list[: len(brs)]
    expected = [
        margin_integral(br, a, b) for br, (a, b) in zip(brs, window_list)
    ]
    assert both_paths(
        lambda: batch_margin_integral(brs, window_list)
    ) == expected


@given(
    anchor=tpbrs(),
    brs=tpbr_lists,
    window_list=st.lists(windows, min_size=12, max_size=12),
)
@settings(deadline=None)
def test_batch_center_distance_equals_scalar(anchor, brs, window_list):
    window_list = window_list[: len(brs)]
    expected = [
        center_distance_sq_integral(br, anchor, a, b)
        for br, (a, b) in zip(brs, window_list)
    ]
    assert both_paths(
        lambda: batch_center_distance_sq_integral(brs, anchor, window_list)
    ) == expected


@given(
    anchor=tpbrs(),
    brs=tpbr_lists,
    window_list=st.lists(windows, min_size=12, max_size=12),
)
@settings(deadline=None)
def test_batch_overlap_integral_equals_scalar(anchor, brs, window_list):
    window_list = window_list[: len(brs)]
    expected = [
        overlap_integral(anchor, br, a, b)
        for br, (a, b) in zip(brs, window_list)
    ]
    assert both_paths(
        lambda: batch_overlap_integral(anchor, brs, window_list)
    ) == expected


# -- plumbing ----------------------------------------------------------------


def test_numpy_enabled_reflects_binding():
    enabled = numpy_enabled()
    with no_numpy():
        assert not numpy_enabled()
    assert numpy_enabled() == enabled


def _sample_points(n=12, seed=3):
    rng = random.Random(seed)
    return [
        MovingPoint(
            (rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)),
            (rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)),
            0.0,
            rng.uniform(1.0, 40.0),
        )
        for _ in range(n)
    ]


@pytest.mark.skipif(not numpy_enabled(), reason="packing requires numpy")
def test_packed_argument_matches_unpacked():
    points = _sample_points()
    brs = [compute_tpbr([p], 0.0, BoundingKind.CONSERVATIVE) for p in points]
    region = TimesliceQuery(Rect((-20.0, -20.0), (20.0, 20.0)), 10.0).region()
    p_pts = kernels.pack_points(points)
    p_brs = kernels.pack_tpbrs(brs)
    assert p_pts is not None and p_brs is not None
    assert batch_region_matches(region, points, p_pts) == \
        batch_region_matches(region, points)
    assert batch_region_intersects(region, brs, p_brs) == \
        batch_region_intersects(region, brs)
    # A stale pack never forces the vectorized path once numpy is gone,
    # and packing itself degrades to None.
    with no_numpy():
        assert kernels.pack_points(points) is None
        assert kernels.pack_tpbrs(brs) is None
        assert batch_region_matches(region, points, p_pts) == \
            [region_matches_point(region, p) for p in points]
        assert batch_region_intersects(region, brs, p_brs) == \
            [region_intersects_tpbr(region, br) for br in brs]


def test_pack_points_below_batch_threshold_is_none():
    assert kernels.pack_points(_sample_points(n=2)) is None
