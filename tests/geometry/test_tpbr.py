"""Tests for time-parameterized bounding rectangles."""

import math

import pytest

from repro.geometry.kinematics import MovingPoint
from repro.geometry.rect import Rect
from repro.geometry.tpbr import TPBR


def sample_tpbr():
    return TPBR(
        lo=(0.0, 0.0), hi=(4.0, 2.0),
        vlo=(-1.0, 0.5), vhi=(1.0, 1.0),
        t_ref=10.0, t_exp=20.0,
    )


def test_bounds_evaluation():
    br = sample_tpbr()
    assert br.lower_at(0, 10.0) == 0.0
    assert br.lower_at(0, 12.0) == -2.0
    assert br.upper_at(1, 12.0) == 4.0


def test_rect_at_collapses_crossed_bounds():
    br = TPBR((0.0,), (1.0,), (1.0,), (-1.0,), 0.0, 10.0)
    r = br.rect_at(5.0)  # bounds crossed at t = 0.5
    assert r.lo == r.hi


def test_area_clamps_at_zero():
    br = TPBR((0.0,), (1.0,), (1.0,), (-1.0,), 0.0, 10.0)
    assert br.area_at(0.0) == 1.0
    assert br.area_at(5.0) == 0.0


def test_margin_and_center():
    br = sample_tpbr()
    assert br.margin_at(10.0) == pytest.approx(4.0 + 2.0)
    assert br.center_at(10.0) == (2.0, 1.0)


def test_expiry_boundary():
    br = sample_tpbr()
    assert not br.is_expired(20.0)
    assert br.is_expired(20.0 + 1e-9)


def test_derived_expiration_of_shrinking_rectangle():
    """A rectangle whose extent reaches zero has a natural expiration
    even when none is recorded (Section 4.1.1)."""
    br = TPBR((0.0,), (2.0,), (1.0,), (-1.0,), 5.0)
    assert br.derived_expiration() == pytest.approx(6.0)


def test_derived_expiration_of_growing_rectangle_is_infinite():
    br = TPBR((0.0,), (2.0,), (-1.0,), (1.0,), 0.0)
    assert math.isinf(br.derived_expiration())


def test_without_expiration():
    br = sample_tpbr()
    stripped = br.without_expiration()
    assert math.isinf(stripped.t_exp)
    assert stripped.lo == br.lo and stripped.vhi == br.vhi


def test_from_moving_point_tracks_it():
    p = MovingPoint((1.0, 2.0), (0.5, -0.5), 0.0, 8.0)
    br = TPBR.from_moving_point(p, 2.0)
    for t in (2.0, 5.0, 8.0):
        x = p.position_at(t)
        assert br.lower_at(0, t) == pytest.approx(x[0])
        assert br.upper_at(1, t) == pytest.approx(x[1])
    assert br.t_exp == 8.0


def test_static_constructor():
    br = TPBR.static(Rect((0.0, 0.0), (2.0, 2.0)), t_ref=1.0, t_exp=5.0)
    assert br.rect_at(1.0) == br.rect_at(4.0)


def test_contains_point_through_lifetime():
    p = MovingPoint((1.0,), (2.0,), 0.0, 4.0)
    good = TPBR((0.0,), (2.0,), (0.0,), (2.0,), 0.0, 4.0)
    assert good.contains_point(p, 0.0)
    # Too slow an upper bound loses the point before it expires.
    bad = TPBR((0.0,), (2.0,), (0.0,), (1.0,), 0.0, 4.0)
    assert not bad.contains_point(p, 0.0)


def test_contains_point_ignores_expired_tail():
    """Containment only matters until the point expires."""
    p = MovingPoint((1.0,), (5.0,), 0.0, 1.0)
    br = TPBR((0.0,), (6.5,), (0.0,), (0.0,), 0.0, 10.0)
    assert br.contains_point(p, 0.0)  # escapes only after t_exp = 1


def test_contains_infinite_point_requires_velocity_bounds():
    p = MovingPoint((1.0,), (2.0,))
    narrow = TPBR((0.0,), (2.0,), (0.0,), (1.0,), 0.0)
    wide = TPBR((0.0,), (2.0,), (0.0,), (2.0,), 0.0)
    assert not narrow.contains_point(p, 0.0)
    assert wide.contains_point(p, 0.0)


def test_contains_tpbr():
    inner = TPBR((1.0,), (2.0,), (0.0,), (0.5,), 0.0, 5.0)
    outer = TPBR((0.0,), (3.0,), (-0.1,), (0.5,), 0.0, 5.0)
    assert outer.contains_tpbr(inner, 0.0)
    assert not inner.contains_tpbr(outer, 0.0)


def test_inconsistent_dimensionality_rejected():
    with pytest.raises(ValueError):
        TPBR((0.0,), (1.0, 2.0), (0.0,), (0.0,))


def test_inverted_bounds_rejected():
    with pytest.raises(ValueError):
        TPBR((2.0,), (1.0,), (0.0,), (0.0,))
