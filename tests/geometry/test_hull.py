"""Tests for convex hulls and bridge finding (Lemma 4.1 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hull import (
    bridge_edge,
    bridge_line,
    line_through,
    lower_hull,
    supporting_line,
    upper_hull,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
, allow_subnormal=False)
points_strategy = st.lists(st.tuples(finite, finite), min_size=1, max_size=40)


def test_upper_hull_simple():
    pts = [(0.0, 0.0), (1.0, 3.0), (2.0, 1.0), (3.0, 2.0)]
    hull = upper_hull(pts)
    assert hull[0] == (0.0, 0.0)
    assert hull[-1] == (3.0, 2.0)
    assert (1.0, 3.0) in hull
    assert (2.0, 1.0) not in hull


def test_lower_hull_simple():
    pts = [(0.0, 0.0), (1.0, -3.0), (2.0, 1.0), (3.0, -1.0)]
    hull = lower_hull(pts)
    assert (1.0, -3.0) in hull
    assert (2.0, 1.0) not in hull


def test_duplicate_t_keeps_extreme():
    pts = [(1.0, 0.0), (1.0, 5.0), (2.0, 1.0)]
    assert upper_hull(pts)[0] == (1.0, 5.0)
    assert lower_hull(pts)[0] == (1.0, 0.0)


def test_single_point_hull():
    assert upper_hull([(1.0, 2.0)]) == [(1.0, 2.0)]
    p, q = bridge_edge([(1.0, 2.0)], 5.0)
    assert p == q == (1.0, 2.0)


def test_empty_hull_raises():
    with pytest.raises(ValueError):
        upper_hull([])


def _tolerance(intercept, slope, t, x):
    """Absolute tolerance for evaluating ``intercept + slope * t``.

    The ``(intercept, slope)`` line form is ill-conditioned for
    near-vertical edges: both terms can reach ~1e16 and cancel, so the
    evaluation's error scales with their magnitudes (ulp-level relative
    error on each), not with ``x``.
    """
    return 1e-6 * max(1.0, abs(x)) + 1e-12 * (abs(intercept) + abs(slope * t))


@given(points_strategy)
@settings(deadline=None)
def test_upper_hull_bounds_all_points(pts):
    """Every line through a hull edge lies on or above all points."""
    hull = upper_hull(pts)
    for a, b in zip(hull, hull[1:]):
        intercept, slope = line_through(a, b)
        for t, x in pts:
            assert intercept + slope * t >= x - _tolerance(
                intercept, slope, t, x
            )


@given(points_strategy)
@settings(deadline=None)
def test_lower_hull_bounds_all_points(pts):
    hull = lower_hull(pts)
    for a, b in zip(hull, hull[1:]):
        intercept, slope = line_through(a, b)
        for t, x in pts:
            assert intercept + slope * t <= x + _tolerance(
                intercept, slope, t, x
            )


@given(points_strategy, finite)
@settings(deadline=None)
def test_bridge_line_bounds_all_points(pts, median):
    intercept, slope = bridge_line(pts, median, upper=True)
    for t, x in pts:
        assert intercept + slope * t >= x - _tolerance(intercept, slope, t, x)


def test_bridge_edge_straddles_median():
    pts = [(0.0, 0.0), (1.0, 2.0), (2.0, 3.0), (3.0, 3.5), (4.0, 3.0)]
    hull = upper_hull(pts)
    p, q = bridge_edge(hull, 2.5)
    assert p[0] <= 2.5 <= q[0]


def test_bridge_median_clamped_to_range():
    hull = upper_hull([(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)])
    left = bridge_edge(hull, -10.0)
    right = bridge_edge(hull, 10.0)
    assert left[0] == (0.0, 0.0)
    assert right[1] == (2.0, 0.0)


def test_line_through_vertical_degenerates_horizontal():
    intercept, slope = line_through((1.0, 2.0), (1.0, 5.0))
    assert slope == 0.0
    assert intercept == 5.0


def test_supporting_line_with_fixed_slope():
    pts = [(0.0, 0.0), (1.0, 3.0), (2.0, 1.0)]
    intercept, slope = supporting_line(pts, 0.5, upper=True)
    assert slope == 0.5
    for t, x in pts:
        assert intercept + slope * t >= x - 1e-12
    # And it is tight: some point touches the line.
    assert any(
        abs(intercept + slope * t - x) < 1e-9 for t, x in pts
    )


def test_supporting_line_lower():
    pts = [(0.0, 0.0), (1.0, -3.0), (2.0, 1.0)]
    intercept, slope = supporting_line(pts, 0.0, upper=False)
    for t, x in pts:
        assert intercept <= x + 1e-12
