"""Tests for the five TPBR construction algorithms (Section 4.1).

The load-bearing invariant for every kind: the computed rectangle bounds
every member from the computation time until the member expires.
Property-based tests drive that across random mixes of finite- and
infinite-expiration points and child rectangles.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bounding import (
    BoundingKind,
    compute_tpbr,
    lemma42_median,
    near_optimal_tpbr,
    optimal_tpbr,
    static_tpbr,
    update_minimum_tpbr,
)
from repro.geometry.integrals import area_integral
from repro.geometry.kinematics import MovingPoint
from repro.geometry.tpbr import TPBR

coord = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_subnormal=False)
speed = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_subnormal=False)
life = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_subnormal=False)


@st.composite
def moving_points(draw, dims=2, allow_infinite=True):
    pos = tuple(draw(coord) for _ in range(dims))
    vel = tuple(draw(speed) for _ in range(dims))
    if allow_infinite and draw(st.booleans()) and draw(st.booleans()):
        t_exp = math.inf
    else:
        t_exp = draw(life)
    return MovingPoint(pos, vel, 0.0, t_exp)


finite_point_lists = st.lists(
    moving_points(allow_infinite=False), min_size=1, max_size=12
)
mixed_point_lists = st.lists(
    moving_points(allow_infinite=True), min_size=1, max_size=12
)

ALL_KINDS = list(BoundingKind)
FINITE_ONLY_KINDS = [BoundingKind.STATIC]


@pytest.mark.parametrize("kind", ALL_KINDS)
@given(points=finite_point_lists)
@settings(deadline=None)
def test_bounds_finite_members(kind, points):
    br = compute_tpbr(
        points, 0.0, kind, horizon=20.0, rng=random.Random(7)
    )
    for p in points:
        assert br.contains_point(p, 0.0, tol=1e-6)


@pytest.mark.parametrize(
    "kind", [k for k in ALL_KINDS if k not in FINITE_ONLY_KINDS]
)
@given(points=mixed_point_lists)
@settings(deadline=None)
def test_bounds_mixed_members(kind, points):
    br = compute_tpbr(
        points, 0.0, kind, horizon=20.0, rng=random.Random(7)
    )
    for p in points:
        assert br.contains_point(p, 0.0, tol=1e-6)


@given(points=finite_point_lists)
@settings(deadline=None)
def test_bounds_child_rectangles(points):
    """Parent rectangles must bound child TPBRs, not just points."""
    children = [TPBR.from_moving_point(p, 0.0) for p in points]
    br = compute_tpbr(
        children, 1.0, BoundingKind.NEAR_OPTIMAL,
        horizon=10.0, rng=random.Random(1),
    )
    for child in children:
        assert br.contains_tpbr(child, 1.0, tol=1e-6)


def test_empty_items_rejected():
    with pytest.raises(ValueError):
        compute_tpbr([], 0.0, BoundingKind.CONSERVATIVE)


def test_dimension_mismatch_rejected():
    a = MovingPoint((0.0,), (0.0,), 0.0, 1.0)
    b = MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, 1.0)
    with pytest.raises(ValueError):
        compute_tpbr([a, b], 0.0, BoundingKind.CONSERVATIVE)


def test_static_rejects_infinite_members():
    p = MovingPoint((0.0,), (1.0,))
    with pytest.raises(ValueError):
        static_tpbr([p], 0.0)


def test_static_allows_infinite_member_moving_away_from_bound():
    """An infinite member with zero velocity is statically boundable."""
    p = MovingPoint((1.0,), (0.0,))
    br = static_tpbr([p], 0.0)
    assert br.contains_point(p, 0.0)


def test_conservative_is_tight_at_reference_time():
    pts = [
        MovingPoint((0.0, 0.0), (1.0, 0.0), 0.0, 10.0),
        MovingPoint((4.0, 2.0), (-1.0, 1.0), 0.0, 5.0),
    ]
    br = compute_tpbr(pts, 0.0, BoundingKind.CONSERVATIVE)
    assert br.rect_at(0.0).lo == (0.0, 0.0)
    assert br.rect_at(0.0).hi == (4.0, 2.0)
    assert br.vhi == (1.0, 1.0)
    assert br.vlo == (-1.0, 0.0)


def test_update_minimum_slower_than_conservative():
    """Figure 4: expiration times let the bound edges move slower."""
    pts = [
        MovingPoint((5.0,), (0.0,), 0.0, 20.0),  # slow, defines the top
        MovingPoint((0.0,), (3.0,), 0.0, 1.0),   # fast but expires soon
    ]
    cons = compute_tpbr(pts, 0.0, BoundingKind.CONSERVATIVE)
    upd = update_minimum_tpbr(pts, 0.0)
    # Conservative must move at the fast object's speed; update-minimum
    # knows the fast object only reaches x=3 before expiring below the
    # slow object's position, so the upper bound need not move at all.
    assert cons.vhi[0] == 3.0
    assert upd.vhi[0] == pytest.approx(0.0)
    assert upd.contains_point(pts[1], 0.0)
    # Both are minimal at the computation time.
    assert upd.rect_at(0.0) == cons.rect_at(0.0)


def test_near_optimal_no_worse_than_conservative_integral():
    rng = random.Random(3)
    pts = [
        MovingPoint(
            (rng.uniform(0, 10), rng.uniform(0, 10)),
            (rng.uniform(-2, 2), rng.uniform(-2, 2)),
            0.0,
            rng.uniform(1, 15),
        )
        for _ in range(20)
    ]
    horizon = 10.0
    cons = compute_tpbr(pts, 0.0, BoundingKind.CONSERVATIVE)
    near = near_optimal_tpbr(pts, 0.0, horizon=horizon, rng=rng)
    assert area_integral(near, 0.0, horizon) <= area_integral(
        cons, 0.0, horizon
    ) * (1.0 + 1e-9)


@given(points=finite_point_lists)
@settings(deadline=None)
def test_optimal_minimizes_volume_integral(points):
    """The optimal TPBR's integral is <= the near-optimal one's.

    Integrals are compared without extent clamping (the objective both
    algorithms minimize).
    """
    horizon = 12.0
    t_exp = max(p.t_exp for p in points)
    delta = min(horizon, t_exp)
    near = near_optimal_tpbr(points, 0.0, horizon=horizon, rng=random.Random(5))
    best = optimal_tpbr(points, 0.0, horizon=horizon)

    def raw_integral(br):
        import numpy as np

        coeffs = np.poly1d([1.0])
        for d in range(br.dims):
            h = br.hi[d] - br.lo[d]
            w = br.vhi[d] - br.vlo[d]
            coeffs = coeffs * np.poly1d([w, h])
        integ = coeffs.integ()
        return float(integ(delta) - integ(0.0))

    assert raw_integral(best) <= raw_integral(near) + 1e-6 * max(
        1.0, abs(raw_integral(near))
    )


def test_optimal_one_dimension_matches_near_optimal():
    pts = [
        MovingPoint((float(i),), (float(i % 3 - 1),), 0.0, 2.0 + i)
        for i in range(6)
    ]
    near = near_optimal_tpbr(pts, 0.0, horizon=8.0)
    best = optimal_tpbr(pts, 0.0, horizon=8.0)
    assert near.lo == pytest.approx(best.lo)
    assert near.vhi == pytest.approx(best.vhi)


def test_infinite_horizon_falls_back_to_conservative():
    pts = [MovingPoint((0.0,), (1.0,)), MovingPoint((2.0,), (-1.0,))]
    near = near_optimal_tpbr(pts, 0.0, horizon=None)
    cons = compute_tpbr(pts, 0.0, BoundingKind.CONSERVATIVE)
    assert near == cons


def test_lemma42_median_matches_paper_example():
    """k=1: m = Delta(3h + 2w*Delta) / (6h + 3w*Delta)."""
    h, w, delta = 2.0, 0.5, 4.0
    expected = delta * (3 * h + 2 * w * delta) / (6 * h + 3 * w * delta)
    assert lemma42_median([(h, w)], delta) == pytest.approx(expected)


def test_lemma42_median_with_no_computed_dims_is_midpoint():
    assert lemma42_median([], 10.0) == pytest.approx(5.0)


def test_lemma42_median_degenerate_extent():
    assert lemma42_median([(0.0, 0.0)], 10.0) == pytest.approx(5.0)


def test_expiration_time_is_max_of_members():
    pts = [
        MovingPoint((0.0,), (0.0,), 0.0, 3.0),
        MovingPoint((1.0,), (0.0,), 0.0, 7.0),
    ]
    br = compute_tpbr(pts, 0.0, BoundingKind.CONSERVATIVE)
    assert br.t_exp == 7.0


def test_expiration_infinite_if_any_member_infinite():
    pts = [
        MovingPoint((0.0,), (0.0,), 0.0, 3.0),
        MovingPoint((1.0,), (0.0,)),
    ]
    br = compute_tpbr(pts, 0.0, BoundingKind.CONSERVATIVE)
    assert math.isinf(br.t_exp)


def test_optimal_degenerate_expiration_falls_back():
    """Regression: denormal expiration times must not break optimal bounds.

    A near-zero ``t_exp`` makes the hull bridge slopes overflow, turning
    every candidate volume into NaN; ``optimal_tpbr`` then has no finite
    best and must fall back to the near-optimal construction instead of
    crashing (or returning None).
    """
    points = [
        MovingPoint((0.0, 0.0), (1.0, 0.0), 0.0, 5.7e-178),
        MovingPoint((10.0, 10.0), (-1.0, 0.5), 0.0, 60.0),
        MovingPoint((-5.0, 3.0), (2.0, -1.0), 0.0, 5e-324),
    ]
    br = compute_tpbr(points, 0.0, BoundingKind.OPTIMAL, horizon=20.0)
    for p in points:
        assert br.contains_point(p, 0.0, tol=1e-6)
