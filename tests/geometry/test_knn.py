"""Tests for the kNN distance kernels: admissibility and bit-identity.

Best-first kNN is only exact if the TPBR lower bound never exceeds the
true distance of any member point (admissibility), and only
deterministic across the scalar / numpy / sharded paths if the batched
kernels reproduce the scalar IEEE-754 results bit for bit.  Both
properties are asserted here, the latter via raw bit-pattern
comparison so ``-0.0`` cannot hide behind ``==``.
"""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import kernels
from repro.geometry.bounding import BoundingKind, compute_tpbr
from repro.geometry.kernels import numpy_enabled, pack_points, pack_tpbrs
from repro.geometry.kinematics import MovingPoint
from repro.geometry.knn import (
    batch_point_distances_sq,
    batch_tpbr_min_distances_sq,
    brute_force_knn,
    point_distance_sq,
    tpbr_min_distance_sq,
    validate_knn_args,
)

DIMS = 2

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_subnormal=False
)
speed = st.floats(
    min_value=-5.0, max_value=5.0, allow_nan=False, allow_subnormal=False
)
times = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_subnormal=False
)


@st.composite
def points(draw):
    pos = tuple(draw(coord) for _ in range(DIMS))
    vel = tuple(draw(speed) for _ in range(DIMS))
    t_ref = draw(times)
    life = draw(st.one_of(st.just(math.inf), times))
    return MovingPoint(pos, vel, t_ref, t_ref + life)


def bits(values):
    return [struct.pack("<d", v) for v in values]


# -- scalar semantics --------------------------------------------------------


def test_point_distance_is_squared_euclidean_at_predicted_position():
    p = MovingPoint((1.0, 2.0), (1.0, -1.0), 0.0, math.inf)
    # At t=3 the point sits at (4, -1); query from (0, 3).
    assert point_distance_sq((0.0, 3.0), p, 3.0) == 4.0**2 + 4.0**2


def test_point_distance_honours_reference_time_offset():
    # Same trajectory expressed with t_ref=10 must give the same value.
    a = MovingPoint((0.0, 0.0), (2.0, 0.0), 0.0, math.inf)
    b = MovingPoint((20.0, 0.0), (2.0, 0.0), 10.0, math.inf)
    x = (7.0, 3.0)
    assert point_distance_sq(x, a, 15.0) == point_distance_sq(x, b, 15.0)


def test_tpbr_distance_zero_inside_and_positive_outside():
    p = MovingPoint((10.0, 10.0), (1.0, 0.0), 0.0, math.inf)
    br = compute_tpbr([p], 0.0, BoundingKind.CONSERVATIVE)
    assert tpbr_min_distance_sq((11.0, 10.0), br, 1.0) == 0.0
    assert tpbr_min_distance_sq((50.0, 10.0), br, 1.0) > 0.0


@given(st.lists(points(), min_size=1, max_size=8), times, st.data())
def test_tpbr_lower_bound_is_admissible(members, t, data):
    """rect-at-t distance never exceeds any member's true distance."""
    x = tuple(
        data.draw(coord, label=f"x[{d}]") for d in range(DIMS)
    )
    t_ref = min(p.t_ref for p in members)
    for kind in (BoundingKind.CONSERVATIVE, BoundingKind.UPDATE_MINIMUM):
        br = compute_tpbr(members, t_ref, kind)
        when = max(t, t_ref)
        bound = tpbr_min_distance_sq(x, br, when)
        for p in members:
            assert bound <= point_distance_sq(x, p, when)


# -- batched kernels: bit-identical to scalar --------------------------------


@pytest.mark.skipif(not numpy_enabled(), reason="numpy not installed")
@given(st.lists(points(), min_size=1, max_size=16), times, st.data())
def test_batch_point_distances_match_scalar_bits(members, t, data):
    x = tuple(data.draw(coord, label=f"x[{d}]") for d in range(DIMS))
    scalar = [point_distance_sq(x, p, t) for p in members]
    batched = batch_point_distances_sq(x, members, t, pack_points(members))
    assert bits(batched) == bits(scalar)


@pytest.mark.skipif(not numpy_enabled(), reason="numpy not installed")
@given(
    st.lists(st.lists(points(), min_size=1, max_size=5), min_size=1,
             max_size=6),
    times,
    st.data(),
)
def test_batch_tpbr_distances_match_scalar_bits(groups, t, data):
    x = tuple(data.draw(coord, label=f"x[{d}]") for d in range(DIMS))
    brs = [compute_tpbr(g, 0.0, BoundingKind.CONSERVATIVE) for g in groups]
    scalar = [tpbr_min_distance_sq(x, br, t) for br in brs]
    batched = batch_tpbr_min_distances_sq(x, brs, t, pack_tpbrs(brs))
    assert bits(batched) == bits(scalar)


def test_batch_falls_back_to_scalar_without_numpy(rng):
    members = [
        MovingPoint((rng.uniform(0, 50), rng.uniform(0, 50)),
                    (rng.uniform(-2, 2), rng.uniform(-2, 2)), 0.0, 40.0)
        for _ in range(10)
    ]
    x = (25.0, 25.0)
    saved = kernels.np
    kernels.np = None
    try:
        fallback = batch_point_distances_sq(x, members, 3.0, None)
    finally:
        kernels.np = saved
    assert fallback == [point_distance_sq(x, p, 3.0) for p in members]


# -- brute-force oracle ------------------------------------------------------


def test_brute_force_filters_expired_and_orders_by_distance_then_oid():
    entries = [
        (MovingPoint((1.0, 0.0), (0.0, 0.0), 0.0, math.inf), 3),
        (MovingPoint((-1.0, 0.0), (0.0, 0.0), 0.0, math.inf), 1),
        (MovingPoint((0.5, 0.0), (0.0, 0.0), 0.0, 2.0), 7),  # expired at t=5
        (MovingPoint((2.0, 0.0), (0.0, 0.0), 0.0, math.inf), 2),
    ]
    got = brute_force_knn(entries, (0.0, 0.0), 5.0, 4)
    assert got == [(1.0, 1), (1.0, 3), (4.0, 2)]


def test_brute_force_point_expiring_exactly_now_is_still_live():
    entries = [(MovingPoint((0.0, 0.0), (0.0, 0.0), 0.0, 5.0), 1)]
    assert brute_force_knn(entries, (0.0, 0.0), 5.0, 1) == [(0.0, 1)]
    assert brute_force_knn(entries, (0.0, 0.0), 5.000001, 1) == []


# -- argument validation -----------------------------------------------------


def test_validate_rejects_bad_arguments():
    with pytest.raises(ValueError):
        validate_knn_args((0.0,), 1.0, 1, 2)  # wrong dimensionality
    with pytest.raises(ValueError):
        validate_knn_args((0.0, 0.0), 1.0, -1, 2)  # negative k
    with pytest.raises(ValueError):
        validate_knn_args((0.0, math.nan), 1.0, 1, 2)  # non-finite coord
    with pytest.raises(ValueError):
        validate_knn_args((0.0, 0.0), math.nan, 1, 2)  # non-finite time
    validate_knn_args((0.0, 0.0), 1.0, 0, 2)  # k == 0 is fine
