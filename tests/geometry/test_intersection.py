"""Tests for query/TPBR/trajectory intersection (Section 4.1.5)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.intersection import (
    feasible_window,
    region_intersects_tpbr,
    region_matches_point,
    sample_region_match,
    tpbrs_intersect,
)
from repro.geometry.kinematics import MovingPoint
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.geometry.tpbr import TPBR


# -- feasible_window ---------------------------------------------------------


def test_feasible_window_unconstrained():
    assert feasible_window([], 1.0, 5.0) == (1.0, 5.0)


def test_feasible_window_constant_constraints():
    assert feasible_window([(1.0, 0.0)], 0.0, 1.0) == (0.0, 1.0)
    assert feasible_window([(-1.0, 0.0)], 0.0, 1.0) is None


def test_feasible_window_clips_by_slopes():
    # t - 2 >= 0 and 8 - t >= 0 on [0, 10] -> [2, 8]
    window = feasible_window([(-2.0, 1.0), (8.0, -1.0)], 0.0, 10.0)
    assert window == pytest.approx((2.0, 8.0))


def test_feasible_window_empty_interval():
    assert feasible_window([(0.0, 0.0)], 5.0, 4.0) is None


def test_feasible_window_infeasible_crossing():
    # t >= 8 and t <= 2 cannot hold together.
    assert feasible_window([(-8.0, 1.0), (2.0, -1.0)], 0.0, 10.0) is None


# -- point matching ------------------------------------------------------------


def test_timeslice_matches_moving_point():
    p = MovingPoint((0.0, 0.0), (1.0, 1.0), 0.0, 10.0)
    q = TimesliceQuery(Rect((4.5, 4.5), (5.5, 5.5)), 5.0)
    assert region_matches_point(q.region(), p)
    q_miss = TimesliceQuery(Rect((4.5, 4.5), (5.5, 5.5)), 7.0)
    assert not region_matches_point(q_miss.region(), p)


def test_expired_point_never_matches():
    """The Figure 1 semantics: o1 updated/expired no longer answers Q1."""
    p = MovingPoint((0.0, 0.0), (1.0, 1.0), 0.0, 3.0)
    q = TimesliceQuery(Rect((4.5, 4.5), (5.5, 5.5)), 5.0)
    assert not region_matches_point(q.region(), p)


def test_point_expiring_inside_window_still_matches_before_expiry():
    p = MovingPoint((5.0, 5.0), (0.0, 0.0), 0.0, 4.0)
    q = WindowQuery(Rect((4.0, 4.0), (6.0, 6.0)), 2.0, 10.0)
    assert region_matches_point(q.region(), p)


def test_window_query_catches_pass_through():
    """A point crossing the rectangle inside the window matches."""
    p = MovingPoint((0.0, 5.0), (2.0, 0.0), 0.0, 100.0)
    q = WindowQuery(Rect((9.0, 4.0), (11.0, 6.0)), 0.0, 10.0)
    assert region_matches_point(q.region(), p)
    q_late = WindowQuery(Rect((9.0, 4.0), (11.0, 6.0)), 6.0, 10.0)
    assert not region_matches_point(q_late.region(), p)


def test_moving_query_follows_target():
    target = MovingPoint((0.0, 0.0), (1.0, 0.0), 0.0, 100.0)
    r1 = Rect((-1.0, -1.0), (1.0, 1.0))
    r2 = Rect((9.0, -1.0), (11.0, 1.0))
    q = MovingQuery(r1, r2, 0.0, 10.0)
    assert region_matches_point(q.region(), target)
    runaway = MovingPoint((0.0, 5.0), (-1.0, 0.0), 0.0, 100.0)
    assert not region_matches_point(q.region(), runaway)


@st.composite
def match_cases(draw):
    coord = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_subnormal=False)
    vel = st.floats(min_value=-3, max_value=3, allow_nan=False, allow_subnormal=False)
    p = MovingPoint(
        (draw(coord), draw(coord)),
        (draw(vel), draw(vel)),
        0.0,
        draw(st.floats(min_value=0, max_value=30, allow_nan=False, allow_subnormal=False)),
    )
    x = draw(coord)
    y = draw(coord)
    rect = Rect((x, y), (x + draw(st.floats(0.5, 20, allow_subnormal=False)), y + draw(st.floats(0.5, 20, allow_subnormal=False))))
    t1 = draw(st.floats(min_value=0, max_value=20, allow_nan=False, allow_subnormal=False))
    t2 = t1 + draw(st.floats(min_value=0, max_value=10, allow_nan=False, allow_subnormal=False))
    return p, WindowQuery(rect, t1, t2)


@given(match_cases())
@settings(deadline=None)
def test_analytic_match_agrees_with_sampling(case):
    """If dense sampling finds the point inside, the analytic test must."""
    p, q = case
    region = q.region()
    if sample_region_match(region, p, samples=400):
        assert region_matches_point(region, p)


# -- TPBR intersection -----------------------------------------------------------


def test_query_clipped_at_rectangle_expiration():
    """Section 4.1.5: intersection is checked until min(t2, t_exp)."""
    br = TPBR((0.0, 0.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0), 0.0, t_exp=2.0)
    # The rectangle would reach the query region at t=5, but expires at 2.
    q = WindowQuery(Rect((5.0, 5.0), (6.0, 6.0)), 0.0, 10.0)
    assert not region_intersects_tpbr(q.region(), br)
    br_live = TPBR((0.0, 0.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0), 0.0, 10.0)
    assert region_intersects_tpbr(q.region(), br_live)


def test_query_entirely_after_expiration():
    br = TPBR((0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0), 0.0, t_exp=2.0)
    q = TimesliceQuery(Rect((0.0, 0.0), (1.0, 1.0)), 3.0)
    assert not region_intersects_tpbr(q.region(), br)


def test_intersection_is_conservative_for_contained_points():
    """If a live point matches a query, any TPBR bounding it intersects."""
    rng = random.Random(4)
    for _ in range(50):
        p = MovingPoint(
            (rng.uniform(0, 20), rng.uniform(0, 20)),
            (rng.uniform(-2, 2), rng.uniform(-2, 2)),
            0.0,
            rng.uniform(0, 20),
        )
        br = TPBR.from_moving_point(p, 0.0)
        x, y = rng.uniform(0, 20), rng.uniform(0, 20)
        q = WindowQuery(
            Rect((x, y), (x + 5, y + 5)),
            rng.uniform(0, 10),
            rng.uniform(10, 20),
        )
        if region_matches_point(q.region(), p):
            assert region_intersects_tpbr(q.region(), br)


def test_tpbrs_intersect():
    a = TPBR((0.0,), (1.0,), (0.0,), (0.0,), 0.0, 10.0)
    b = TPBR((3.0,), (4.0,), (-1.0,), (-1.0,), 0.0, 10.0)
    assert not tpbrs_intersect(a, b, 0.0, 1.0)
    assert tpbrs_intersect(a, b, 0.0, 5.0)
    # Clipped by expiration before they meet:
    c = TPBR((3.0,), (4.0,), (-1.0,), (-1.0,), 0.0, 1.0)
    assert not tpbrs_intersect(a, c, 0.0, 5.0)


def test_feasible_window_grazing_slope_is_constant():
    """Regression: near-zero slopes must act as constant constraints.

    Dividing by a slope below EPS produced astronomically large (or
    overflowing) roots for grazing intersections; such constraints are
    now judged by their offset alone.
    """
    # Satisfied constant (offset within EPS tolerance): full window.
    assert feasible_window([(-5e-10, 1e-12)], 0.0, 10.0) == (0.0, 10.0)
    assert feasible_window([(1.0, -1e-12)], 0.0, 10.0) == (0.0, 10.0)
    # Violated constant: infeasible regardless of the tiny slope's sign.
    assert feasible_window([(-1.0, 1e-12)], 0.0, 10.0) is None
    assert feasible_window([(-1.0, -1e-12)], 0.0, 10.0) is None
    # A genuine slope just above EPS still clips the window.
    window = feasible_window([(-1.0, 0.5)], 0.0, 10.0)
    assert window is not None and window[0] == pytest.approx(2.0, abs=1e-6)
